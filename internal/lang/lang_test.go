package lang_test

import (
	"math/rand"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/dfa"
	"repro/internal/gen"
	"repro/internal/lang"
	"repro/internal/omega"
	"repro/internal/word"
)

var ab = alphabet.MustLetters("ab")

func randomProperty(rng *rand.Rand) *lang.Property {
	return lang.FromDFA(gen.RandomDFA(rng, ab, 2+rng.Intn(4), 0.4))
}

func mustEqualFin(t *testing.T, p, q *lang.Property, label string) {
	t.Helper()
	eq, err := p.Equal(q)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("%s: finitary properties differ", label)
	}
}

func mustEquivalent(t *testing.T, a, b *omega.Automaton, label string) {
	t.Helper()
	eq, ce, err := a.Equivalent(b)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("%s: automata differ, counterexample %v", label, ce)
	}
}

func TestEpsilonNormalization(t *testing.T) {
	// a* accepts ε as a DFA; the property must not contain it, but must
	// contain a, aa, ...
	p := lang.MustRegex("a*", ab)
	if p.Contains(word.Finite{}) {
		t.Error("ε must be normalized out")
	}
	if !p.Contains(word.FiniteFromString("a")) {
		t.Error("a should be in a*")
	}
	eq, err := p.Equal(lang.MustRegex("a^+", ab))
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("a* and a⁺ should be the same finitary property")
	}
}

func TestFinitaryDuality(t *testing.T) {
	// A_f(Φ)‾ = E_f(Φ̄) and E_f(Φ)‾ = A_f(Φ̄), on random properties.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		phi := randomProperty(rng)
		mustEqualFin(t, phi.Af().Complement(), phi.Complement().Ef(), "¬A_f(Φ) = E_f(¬Φ)")
		mustEqualFin(t, phi.Ef().Complement(), phi.Complement().Af(), "¬E_f(Φ) = A_f(¬Φ)")
	}
}

func TestInfinitaryDuality(t *testing.T) {
	// ¬A(Φ) = E(Φ̄) and ¬R(Φ) = P(Φ̄), checked exactly on automata via
	// single-pair complementation.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 25; i++ {
		phi := randomProperty(rng)
		notA, err := lang.A(phi).ComplementSinglePair()
		if err != nil {
			t.Fatal(err)
		}
		mustEquivalent(t, notA, lang.E(phi.Complement()), "¬A(Φ) = E(¬Φ)")

		notR, err := lang.R(phi).ComplementSinglePair()
		if err != nil {
			t.Fatal(err)
		}
		mustEquivalent(t, notR, lang.P(phi.Complement()), "¬R(Φ) = P(¬Φ)")

		notP, err := lang.P(phi).ComplementSinglePair()
		if err != nil {
			t.Fatal(err)
		}
		mustEquivalent(t, notP, lang.R(phi.Complement()), "¬P(Φ) = R(¬Φ)")
	}
}

func TestGuaranteeClosureLaws(t *testing.T) {
	// E(Φ1) ∩ E(Φ2) = E(E_f(Φ1) ∩ E_f(Φ2)).
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 20; i++ {
		phi1, phi2 := randomProperty(rng), randomProperty(rng)
		lhs, err := lang.E(phi1).Intersect(lang.E(phi2))
		if err != nil {
			t.Fatal(err)
		}
		inner, err := phi1.Ef().Intersect(phi2.Ef())
		if err != nil {
			t.Fatal(err)
		}
		mustEquivalent(t, lhs, lang.E(inner), "E∩E")
	}
}

func TestSafetyClosureLaws(t *testing.T) {
	// A(Φ1) ∩ A(Φ2) = A(Φ1 ∩ Φ2).
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 20; i++ {
		phi1, phi2 := randomProperty(rng), randomProperty(rng)
		lhs, err := lang.A(phi1).Intersect(lang.A(phi2))
		if err != nil {
			t.Fatal(err)
		}
		inner, err := phi1.Intersect(phi2)
		if err != nil {
			t.Fatal(err)
		}
		mustEquivalent(t, lhs, lang.A(inner), "A∩A")
	}
}

func TestUnionClosureLawsOnCorpus(t *testing.T) {
	// Union laws need a union of automata, which Streett products don't
	// give directly; verify membership pointwise on an exhaustive corpus.
	rng := rand.New(rand.NewSource(19))
	corpus := gen.Lassos(ab, 3, 3)
	for i := 0; i < 12; i++ {
		phi1, phi2 := randomProperty(rng), randomProperty(rng)

		// E(Φ1) ∪ E(Φ2) = E(Φ1 ∪ Φ2).
		union, err := phi1.Union(phi2)
		if err != nil {
			t.Fatal(err)
		}
		e1, e2, eu := lang.E(phi1), lang.E(phi2), lang.E(union)
		// A(Φ1) ∪ A(Φ2) = A(A_f(Φ1) ∪ A_f(Φ2)).
		afU, err := phi1.Af().Union(phi2.Af())
		if err != nil {
			t.Fatal(err)
		}
		a1, a2, au := lang.A(phi1), lang.A(phi2), lang.A(afU)
		// R(Φ1) ∪ R(Φ2) = R(Φ1 ∪ Φ2).
		r1, r2, ru := lang.R(phi1), lang.R(phi2), lang.R(union)
		// P(Φ1) ∪ P(Φ2) = P(¬minex(Φ1,Φ2)‾)… the paper:
		// P(Φ1) ∪ P(Φ2) = P(complement of minex(Φ̄1, Φ̄2)).
		mx, err := phi1.Complement().Minex(phi2.Complement())
		if err != nil {
			t.Fatal(err)
		}
		p1, p2, pu := lang.P(phi1), lang.P(phi2), lang.P(mx.Complement())

		for _, w := range corpus {
			if eu.AcceptsOrFalse(w) != (e1.AcceptsOrFalse(w) || e2.AcceptsOrFalse(w)) {
				t.Fatalf("E-union law fails on %v", w)
			}
			if au.AcceptsOrFalse(w) != (a1.AcceptsOrFalse(w) || a2.AcceptsOrFalse(w)) {
				t.Fatalf("A-union law fails on %v", w)
			}
			if ru.AcceptsOrFalse(w) != (r1.AcceptsOrFalse(w) || r2.AcceptsOrFalse(w)) {
				t.Fatalf("R-union law fails on %v", w)
			}
			if pu.AcceptsOrFalse(w) != (p1.AcceptsOrFalse(w) || p2.AcceptsOrFalse(w)) {
				t.Fatalf("P-union law fails on %v (i=%d)", w, i)
			}
		}
	}
}

func TestRecurrenceIntersectionMinex(t *testing.T) {
	// R(Φ1) ∩ R(Φ2) = R(minex(Φ1, Φ2)) on random properties, exactly.
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 20; i++ {
		phi1, phi2 := randomProperty(rng), randomProperty(rng)
		lhs, err := lang.R(phi1).Intersect(lang.R(phi2))
		if err != nil {
			t.Fatal(err)
		}
		mx, err := phi1.Minex(phi2)
		if err != nil {
			t.Fatal(err)
		}
		mustEquivalent(t, lhs, lang.R(mx), "R∩R = R(minex)")
	}
}

func TestPersistenceIntersection(t *testing.T) {
	// P(Φ1) ∩ P(Φ2) = P(Φ1 ∩ Φ2).
	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 20; i++ {
		phi1, phi2 := randomProperty(rng), randomProperty(rng)
		lhs, err := lang.P(phi1).Intersect(lang.P(phi2))
		if err != nil {
			t.Fatal(err)
		}
		inner, err := phi1.Intersect(phi2)
		if err != nil {
			t.Fatal(err)
		}
		mustEquivalent(t, lhs, lang.P(inner), "P∩P = P(∩)")
	}
}

func TestInclusionLaws(t *testing.T) {
	// The paper's hierarchy embeddings:
	//   A(Φ) = R(A_f(Φ)) = P(A_f(Φ)),  E(Φ) = R(E_f(Φ)) = P(E_f(Φ)).
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 20; i++ {
		phi := randomProperty(rng)
		a, e := lang.A(phi), lang.E(phi)
		mustEquivalent(t, a, lang.R(phi.Af()), "A = R∘A_f")
		mustEquivalent(t, a, lang.P(phi.Af()), "A = P∘A_f")
		mustEquivalent(t, e, lang.R(phi.Ef()), "E = R∘E_f")
		mustEquivalent(t, e, lang.P(phi.Ef()), "E = P∘E_f")
	}
}

func TestSafetyCharacterization(t *testing.T) {
	// Π safety ⇒ Π = A(Pref(Π)); and the (a*b)^ω counterexample.
	phi := lang.MustRegex("a^+b*", ab)
	s := lang.A(phi)
	mustEquivalent(t, s, s.SafetyClosure(), "safety = its closure")

	r := lang.R(lang.MustRegex(".*b", ab)) // (a*b)^ω
	eq, _, err := r.Equivalent(r.SafetyClosure())
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("(a*b)^ω should differ from its safety closure")
	}
}

func TestApply(t *testing.T) {
	phi := lang.MustRegex("a^+", ab)
	for _, op := range []lang.Op{lang.OpA, lang.OpE, lang.OpR, lang.OpP} {
		a, err := lang.Apply(op, phi)
		if err != nil {
			t.Fatal(err)
		}
		if a == nil {
			t.Fatalf("Apply(%v) returned nil", op)
		}
	}
	if _, err := lang.Apply(lang.Op(99), phi); err == nil {
		t.Error("unknown op should fail")
	}
	if lang.Op(99).String() == "" {
		t.Error("unknown op should still print")
	}
}

func TestObligationAndReactivityBuilders(t *testing.T) {
	phi1 := lang.MustRegex("a^+", ab)
	psi1 := lang.MustRegex(".*b", ab)
	phi2 := lang.MustRegex(".*a", ab)
	psi2 := lang.MustRegex("b^+", ab)

	ob, err := lang.Obligation([]*lang.Property{phi1, phi2}, []*lang.Property{psi1, psi2})
	if err != nil {
		t.Fatal(err)
	}
	if ob.NumPairs() != 2 {
		t.Errorf("2-conjunct obligation should have 2 pairs, got %d", ob.NumPairs())
	}
	re, err := lang.Reactivity([]*lang.Property{phi1, phi2}, []*lang.Property{psi1, psi2})
	if err != nil {
		t.Fatal(err)
	}
	if re.NumPairs() != 2 {
		t.Errorf("2-conjunct reactivity should have 2 pairs, got %d", re.NumPairs())
	}

	// Pointwise semantics check of the 2-conjunct reactivity on a corpus.
	r1, err := lang.SimpleReactivity(phi1, psi1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := lang.SimpleReactivity(phi2, psi2)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range gen.Lassos(ab, 3, 3) {
		want := r1.AcceptsOrFalse(w) && r2.AcceptsOrFalse(w)
		if got := re.AcceptsOrFalse(w); got != want {
			t.Fatalf("reactivity conjunction wrong on %v", w)
		}
	}

	if _, err := lang.Obligation(nil, nil); err == nil {
		t.Error("empty obligation should fail")
	}
	if _, err := lang.Reactivity([]*lang.Property{phi1}, nil); err == nil {
		t.Error("mismatched reactivity lists should fail")
	}
}

func TestSimpleObligationSemanticsOnCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	corpus := gen.Lassos(ab, 3, 3)
	for i := 0; i < 12; i++ {
		phi, psi := randomProperty(rng), randomProperty(rng)
		ob, err := lang.SimpleObligation(phi, psi)
		if err != nil {
			t.Fatal(err)
		}
		aPhi, ePsi := lang.A(phi), lang.E(psi)
		for _, w := range corpus {
			want := aPhi.AcceptsOrFalse(w) || ePsi.AcceptsOrFalse(w)
			if got := ob.AcceptsOrFalse(w); got != want {
				t.Fatalf("simple obligation wrong on %v (iter %d)", w, i)
			}
		}
	}
}

func TestSimpleReactivitySemanticsOnCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	corpus := gen.Lassos(ab, 3, 3)
	for i := 0; i < 12; i++ {
		phi, psi := randomProperty(rng), randomProperty(rng)
		sr, err := lang.SimpleReactivity(phi, psi)
		if err != nil {
			t.Fatal(err)
		}
		rPhi, pPsi := lang.R(phi), lang.P(psi)
		for _, w := range corpus {
			want := rPhi.AcceptsOrFalse(w) || pPsi.AcceptsOrFalse(w)
			if got := sr.AcceptsOrFalse(w); got != want {
				t.Fatalf("simple reactivity wrong on %v (iter %d)", w, i)
			}
		}
	}
}

func TestPropertyAccessors(t *testing.T) {
	p := lang.MustRegex("a^+", ab)
	if p.Alphabet() != ab {
		t.Error("Alphabet() lost identity")
	}
	if p.DFA() == nil {
		t.Error("DFA() nil")
	}
	if p.IsEmpty() {
		t.Error("a⁺ is not empty")
	}
	if p.IsUniversal() {
		t.Error("a⁺ is not universal")
	}
	if !lang.MustRegex(".^+", ab).IsUniversal() {
		t.Error("Σ⁺ is universal")
	}
	var _ *dfa.DFA = p.DFA()
}

func TestAlphabetMismatchErrors(t *testing.T) {
	abc := alphabet.MustLetters("abc")
	p := lang.MustRegex("a", ab)
	q := lang.MustRegex("a", abc)
	if _, err := lang.SimpleObligation(p, q); err == nil {
		t.Error("obligation mismatch should fail")
	}
	if _, err := lang.SimpleReactivity(p, q); err == nil {
		t.Error("reactivity mismatch should fail")
	}
	if _, err := p.Union(q); err == nil {
		t.Error("union mismatch should fail")
	}
}

func TestFromRegexError(t *testing.T) {
	if _, err := lang.FromRegex("(", ab); err == nil {
		t.Error("bad regex should fail")
	}
	if _, err := lang.FromRegex("a^w", ab); err == nil {
		t.Error("ω-regex should fail for finitary property")
	}
}

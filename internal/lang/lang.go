// Package lang implements the paper's linguistic view (§2): finitary
// properties Φ ⊆ Σ⁺ with the operators A_f, E_f, minex, Pref and
// complementation, and the four constructors A, E, R, P that build
// infinitary properties (deterministic Streett automata) from finitary
// ones, plus the compound constructors for simple obligation and simple
// reactivity properties.
package lang

import (
	"fmt"

	"repro/internal/alphabet"
	"repro/internal/autkern"
	"repro/internal/dfa"
	"repro/internal/omega"
	"repro/internal/regex"
	"repro/internal/word"
)

// Property is a finitary property: a regular language within Σ⁺,
// represented by a minimal complete DFA. The empty word is normalized out.
type Property struct {
	d *dfa.DFA
}

// FromDFA wraps a DFA as a finitary property. ε-acceptance is removed
// (finitary properties live in Σ⁺) and the automaton is minimized.
func FromDFA(d *dfa.DFA) *Property {
	if d.AcceptsEpsilon() {
		d = stripEpsilon(d)
	}
	return &Property{d: d.Minimize()}
}

// stripEpsilon returns a DFA with the same language minus ε, by cloning
// the start state into a fresh non-accepting copy.
func stripEpsilon(d *dfa.DFA) *dfa.DFA {
	n := d.NumStates()
	k := d.Alphabet().Size()
	trans := make([][]int, n+1)
	accept := make([]bool, n+1)
	for q := 0; q < n; q++ {
		row := make([]int, k)
		for s := 0; s < k; s++ {
			row[s] = d.StepIndex(q, s)
		}
		trans[q] = row
		accept[q] = d.Accepting(q)
	}
	startRow := make([]int, k)
	for s := 0; s < k; s++ {
		startRow[s] = d.StepIndex(d.Start(), s)
	}
	trans[n] = startRow
	accept[n] = false
	return dfa.MustNew(d.Alphabet(), trans, n, accept)
}

// FromRegex parses and compiles a finitary regular expression into a
// property over the given alphabet.
func FromRegex(expr string, alpha *alphabet.Alphabet) (*Property, error) {
	d, err := regex.CompileString(expr, alpha)
	if err != nil {
		return nil, fmt.Errorf("lang: %w", err)
	}
	return FromDFA(d), nil
}

// MustRegex is FromRegex but panics on error; for fixtures and examples.
func MustRegex(expr string, alpha *alphabet.Alphabet) *Property {
	p, err := FromRegex(expr, alpha)
	if err != nil {
		panic(err)
	}
	return p
}

// Alphabet returns the property's alphabet.
func (p *Property) Alphabet() *alphabet.Alphabet { return p.d.Alphabet() }

// DFA returns the property's minimal DFA (do not mutate).
func (p *Property) DFA() *dfa.DFA { return p.d }

// Contains reports whether the non-empty finite word has the property.
func (p *Property) Contains(w word.Finite) bool {
	return len(w) > 0 && p.d.Accepts(w)
}

// IsEmpty reports whether the property holds of no word.
func (p *Property) IsEmpty() bool { return p.d.IsEmpty() }

// IsUniversal reports whether the property holds of every word in Σ⁺.
func (p *Property) IsUniversal() bool { return p.d.IsUniversal() }

// Equal reports whether two finitary properties coincide (within Σ⁺).
func (p *Property) Equal(q *Property) (bool, error) { return p.d.Equal(q.d) }

// Complement returns Σ⁺ − Φ.
func (p *Property) Complement() *Property { return FromDFA(p.d.Complement()) }

// Union returns Φ ∪ Ψ.
func (p *Property) Union(q *Property) (*Property, error) {
	d, err := p.d.Union(q.d)
	if err != nil {
		return nil, err
	}
	return FromDFA(d), nil
}

// Intersect returns Φ ∩ Ψ.
func (p *Property) Intersect(q *Property) (*Property, error) {
	d, err := p.d.Intersect(q.d)
	if err != nil {
		return nil, err
	}
	return FromDFA(d), nil
}

// Af returns A_f(Φ): the words all of whose non-empty prefixes are in Φ.
func (p *Property) Af() *Property { return FromDFA(p.d.PrefixClosedSubset()) }

// Ef returns E_f(Φ) = Φ·Σ*: the words with some non-empty prefix in Φ.
func (p *Property) Ef() *Property { return FromDFA(p.d.ExtensionClosure()) }

// Prefixes returns the non-empty prefixes of Φ-words.
func (p *Property) Prefixes() *Property { return FromDFA(p.d.Prefixes()) }

// PrefixFreeKernel returns the Φ-words with no proper Φ-prefix.
func (p *Property) PrefixFreeKernel() *Property { return FromDFA(p.d.PrefixFreeKernel()) }

// Minex returns minex(Φ, Ψ): the minimal proper Ψ-extensions of Φ-words.
func (p *Property) Minex(q *Property) (*Property, error) {
	d, err := p.d.Minex(q.d)
	if err != nil {
		return nil, err
	}
	return FromDFA(d), nil
}

// Op names one of the paper's four infinitary constructors.
type Op int

// The four constructors of §2.
const (
	OpA Op = iota + 1 // all prefixes
	OpE               // some prefix
	OpR               // infinitely many prefixes (recurrence)
	OpP               // all but finitely many prefixes (persistence)
)

func (o Op) String() string {
	switch o {
	case OpA:
		return "A"
	case OpE:
		return "E"
	case OpR:
		return "R"
	case OpP:
		return "P"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Apply builds the infinitary property O(Φ) as a Streett automaton.
func Apply(o Op, p *Property) (*omega.Automaton, error) {
	switch o {
	case OpA:
		return A(p), nil
	case OpE:
		return E(p), nil
	case OpR:
		return R(p), nil
	case OpP:
		return P(p), nil
	default:
		return nil, fmt.Errorf("lang: unknown operator %v", o)
	}
}

// A returns the safety property A(Φ): all prefixes of the word are in Φ.
// The result is a safety automaton: a single pair (∅, P) where leaving P
// is irreversible.
func A(p *Property) *omega.Automaton {
	d := p.d
	n := d.NumStates()
	k := d.Alphabet().Size()
	sink := n
	trans := make([][]int, n+1)
	for q := 0; q < n; q++ {
		row := make([]int, k)
		for s := 0; s < k; s++ {
			next := d.StepIndex(q, s)
			if d.Accepting(next) {
				row[s] = next
			} else {
				row[s] = sink
			}
		}
		trans[q] = row
	}
	sinkRow := make([]int, k)
	for s := range sinkRow {
		sinkRow[s] = sink
	}
	trans[sink] = sinkRow
	pair := omega.Pair{R: make([]bool, n+1), P: make([]bool, n+1)}
	for q := 0; q < n; q++ {
		pair.P[q] = true
	}
	return omega.MustNew(d.Alphabet(), trans, d.Start(), []omega.Pair{pair}).Trim()
}

// E returns the guarantee property E(Φ) = Φ·Σ^ω: some prefix is in Φ.
// The result is a guarantee automaton: once the good region is entered it
// is never left.
func E(p *Property) *omega.Automaton {
	d := p.d
	n := d.NumStates()
	k := d.Alphabet().Size()
	top := n
	trans := make([][]int, n+1)
	for q := 0; q < n; q++ {
		row := make([]int, k)
		for s := 0; s < k; s++ {
			next := d.StepIndex(q, s)
			if d.Accepting(next) {
				row[s] = top
			} else {
				row[s] = next
			}
		}
		trans[q] = row
	}
	topRow := make([]int, k)
	for s := range topRow {
		topRow[s] = top
	}
	trans[top] = topRow
	pair := omega.Pair{R: make([]bool, n+1), P: make([]bool, n+1)}
	pair.R[top] = true
	pair.P[top] = true
	return omega.MustNew(d.Alphabet(), trans, d.Start(), []omega.Pair{pair}).Trim()
}

// R returns the recurrence property R(Φ): infinitely many prefixes are in
// Φ. The result is a recurrence (Büchi-style) automaton: P = ∅.
func R(p *Property) *omega.Automaton {
	d := p.d
	n := d.NumStates()
	trans := copyTrans(d)
	pair := omega.Pair{R: make([]bool, n), P: make([]bool, n)}
	for q := 0; q < n; q++ {
		pair.R[q] = d.Accepting(q)
	}
	return omega.MustNew(d.Alphabet(), trans, d.Start(), []omega.Pair{pair})
}

// P returns the persistence property P(Φ): all but finitely many prefixes
// are in Φ. The result is a persistence automaton: R = ∅.
func P(p *Property) *omega.Automaton {
	d := p.d
	n := d.NumStates()
	trans := copyTrans(d)
	pair := omega.Pair{R: make([]bool, n), P: make([]bool, n)}
	for q := 0; q < n; q++ {
		pair.P[q] = d.Accepting(q)
	}
	return omega.MustNew(d.Alphabet(), trans, d.Start(), []omega.Pair{pair})
}

func copyTrans(d *dfa.DFA) [][]int {
	n := d.NumStates()
	k := d.Alphabet().Size()
	trans := make([][]int, n)
	for q := 0; q < n; q++ {
		row := make([]int, k)
		for s := 0; s < k; s++ {
			row[s] = d.StepIndex(q, s)
		}
		trans[q] = row
	}
	return trans
}

// SimpleObligation returns A(Φ) ∪ E(Ψ) as a single-pair automaton: the
// conditional obligation "if a Φ̄-prefix occurs, a Ψ-prefix must occur"
// shape of §2 is SimpleObligation(Φ̄', Ψ) for suitable arguments.
func SimpleObligation(phi, psi *Property) (*omega.Automaton, error) {
	if !phi.Alphabet().Equal(psi.Alphabet()) {
		return nil, fmt.Errorf("lang: obligation over different alphabets")
	}
	dA, dE := phi.d, psi.d
	k := dA.Alphabet().Size()
	nA := dA.NumStates()
	// A-side states 0..nA-1 plus sink nA; E-side latch handled by a
	// dedicated absorbing top product state.
	type st struct {
		qa int // nA = safety sink
		qe int
	}
	top := -1 // marker for the absorbing accept state
	in := autkern.NewInterner[st]()
	in.Intern(st{qa: dA.Start(), qe: dE.Start()})
	var trans [][]int
	for i := 0; i < in.Len(); i++ {
		s := in.Key(i)
		row := make([]int, k)
		if s.qa == top {
			// absorbing accept
			for sym := 0; sym < k; sym++ {
				row[sym] = i
			}
			trans = append(trans, row)
			continue
		}
		for sym := 0; sym < k; sym++ {
			nextE := dE.StepIndex(s.qe, sym)
			if dE.Accepting(nextE) {
				row[sym] = in.Intern(st{qa: top, qe: -1})
				continue
			}
			nextA := s.qa
			if nextA != nA {
				cand := dA.StepIndex(s.qa, sym)
				if dA.Accepting(cand) {
					nextA = cand
				} else {
					nextA = nA
				}
			}
			row[sym] = in.Intern(st{qa: nextA, qe: nextE})
		}
		trans = append(trans, row)
	}
	n := in.Len()
	pair := omega.Pair{R: make([]bool, n), P: make([]bool, n)}
	for i := 0; i < n; i++ {
		s := in.Key(i)
		if s.qa == top {
			pair.R[i] = true
			pair.P[i] = true
		} else {
			pair.P[i] = s.qa != nA
		}
	}
	return omega.New(dA.Alphabet(), trans, 0, []omega.Pair{pair})
}

// SimpleReactivity returns R(Φ) ∪ P(Ψ) as a single-pair automaton — the
// paper's simple reactivity shape, whose Streett pair condition
// "inf ∩ R ≠ ∅ or inf ⊆ P" it realizes directly.
func SimpleReactivity(phi, psi *Property) (*omega.Automaton, error) {
	if !phi.Alphabet().Equal(psi.Alphabet()) {
		return nil, fmt.Errorf("lang: reactivity over different alphabets")
	}
	d1, d2 := phi.d, psi.d
	k := d1.Alphabet().Size()
	in := autkern.NewPairInterner()
	in.Intern(d1.Start(), d2.Start())
	var trans [][]int
	for i := 0; i < in.Len(); i++ {
		x, y := in.Pair(i)
		row := make([]int, k)
		for s := 0; s < k; s++ {
			row[s] = in.Intern(d1.StepIndex(x, s), d2.StepIndex(y, s))
		}
		trans = append(trans, row)
	}
	n := in.Len()
	pair := omega.Pair{R: make([]bool, n), P: make([]bool, n)}
	for i := 0; i < n; i++ {
		x, y := in.Pair(i)
		pair.R[i] = d1.Accepting(x)
		pair.P[i] = d2.Accepting(y)
	}
	return omega.New(d1.Alphabet(), trans, 0, []omega.Pair{pair})
}

// Obligation builds the conjunctive-normal-form obligation property
// ⋂ᵢ (A(Φᵢ) ∪ E(Ψᵢ)) as a k-pair automaton.
func Obligation(phis, psis []*Property) (*omega.Automaton, error) {
	if len(phis) != len(psis) || len(phis) == 0 {
		return nil, fmt.Errorf("lang: obligation needs matching non-empty conjunct lists")
	}
	autos := make([]*omega.Automaton, len(phis))
	for i := range phis {
		a, err := SimpleObligation(phis[i], psis[i])
		if err != nil {
			return nil, err
		}
		autos[i] = a
	}
	return omega.IntersectAll(autos...)
}

// Reactivity builds the conjunctive-normal-form reactivity property
// ⋂ᵢ (R(Φᵢ) ∪ P(Ψᵢ)) as a k-pair automaton.
func Reactivity(phis, psis []*Property) (*omega.Automaton, error) {
	if len(phis) != len(psis) || len(phis) == 0 {
		return nil, fmt.Errorf("lang: reactivity needs matching non-empty conjunct lists")
	}
	autos := make([]*omega.Automaton, len(phis))
	for i := range phis {
		a, err := SimpleReactivity(phis[i], psis[i])
		if err != nil {
			return nil, err
		}
		autos[i] = a
	}
	return omega.IntersectAll(autos...)
}

package eval_test

import (
	"math/rand"
	"testing"

	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/ltl"
)

// TestSimplifyPreservesSemantics checks ltl.Simplify against the
// evaluator on random formulas (living in eval's test package because the
// check needs the evaluator; ltl cannot import eval).
func TestSimplifyPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 400; trial++ {
		f := gen.RandomFormula(rng, gen.FormulaOpts{
			Props: []string{"a", "b"}, MaxDepth: 5, AllowFuture: true, AllowPast: true,
		})
		s := ltl.Simplify(f)
		if ltl.Size(s) > ltl.Size(f) {
			t.Fatalf("Simplify grew %q into %q", f.String(), s.String())
		}
		w := gen.RandomLasso(rng, ab, 3, 3)
		ev := eval.NewEvaluator(w)
		for j := 0; j < 6; j++ {
			x, err := ev.EvalAt(f, j)
			if err != nil {
				t.Fatal(err)
			}
			y, err := ev.EvalAt(s, j)
			if err != nil {
				t.Fatal(err)
			}
			if x != y {
				t.Fatalf("Simplify changed semantics of %q (-> %q) at %d on %v", f.String(), s.String(), j, w)
			}
		}
	}
}

func TestSimplifyExamples(t *testing.T) {
	tests := []struct {
		in, want string
	}{
		{"!!p", "p"},
		{"p & true", "p"},
		{"p | false", "p"},
		{"p & false", "false"},
		{"F F p", "F p"},
		{"G G p", "G p"},
		{"O O p", "O p"},
		{"true U p", "F p"},
		{"p U true", "true"},
		{"p W false", "G p"},
		{"p S false", "false"},
		{"true -> p", "p"},
		{"p <-> true", "p"},
		{"p & p", "p"},
		{"X true", "true"},
		{"Y false", "false"},
		{"Z true", "true"},
		{"p B true", "true"},
	}
	for _, tt := range tests {
		got := ltl.Simplify(ltl.MustParse(tt.in)).String()
		if got != tt.want {
			t.Errorf("Simplify(%s) = %s, want %s", tt.in, got, tt.want)
		}
	}
}

// Package eval implements the semantics of temporal formulas (§4): the
// satisfaction relation (σ, j) ⊨ p over infinite computations, and the
// end-satisfaction relation σ ⊩ p of past formulas over finite words, on
// which the paper's esat(p) finitary properties are built.
//
// Infinite computations are lasso words u·v^ω. Evaluation is exact: the
// truth sequence of every subformula along an ultimately periodic word is
// itself ultimately periodic; the evaluator computes that representation
// bottom-up. Future operators are resolved by scanning one full period
// past the stabilization point (a sound least-fixpoint cutoff), past
// operators by running their forward recurrence one extra period (the
// one-bit transfer function of a monotone recurrence stabilizes after a
// single iteration).
//
// Semantic conventions: U and S are the standard strict-free strong
// versions (p U q: q eventually holds and p holds at all positions before
// it); W and B are their weak counterparts; ◯⁻ (Y) is strong previous and
// ◯̃⁻ (Z) weak previous. On symbols that are proposition valuations
// ("{p,q}"), a proposition holds iff the valuation sets it; on plain
// symbols, the proposition named like the symbol holds (the paper's
// finite-Σ convention where states double as propositions).
package eval

import (
	"fmt"

	"repro/internal/alphabet"
	"repro/internal/ltl"
	"repro/internal/obs"
	"repro/internal/word"
)

var (
	cntHoldsChecks  = obs.NewCounter("eval.holds.checks")
	cntEndSatChecks = obs.NewCounter("eval.endsat.checks")
)

// seq is an ultimately periodic boolean sequence: pre is the transient,
// loop the repeating part (non-empty).
type seq struct {
	pre  []bool
	loop []bool
}

func (s seq) at(j int) bool {
	if j < len(s.pre) {
		return s.pre[j]
	}
	return s.loop[(j-len(s.pre))%len(s.loop)]
}

// makeSeq materializes a sequence with transient length t and period l
// from a pointwise function assumed periodic (period l) beyond t.
func makeSeq(t, l int, at func(int) bool) seq {
	s := seq{pre: make([]bool, t), loop: make([]bool, l)}
	for j := 0; j < t; j++ {
		s.pre[j] = at(j)
	}
	for i := 0; i < l; i++ {
		s.loop[i] = at(t + i)
	}
	return s
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int) int { return a / gcd(a, b) * b }

// align returns a common shape (transient, period) for combining
// sequences.
func align(xs ...seq) (int, int) {
	t, l := 0, 1
	for _, x := range xs {
		if len(x.pre) > t {
			t = len(x.pre)
		}
		l = lcm(l, len(x.loop))
	}
	return t, l
}

// HoldsAtSymbol reports whether proposition name holds at the given
// symbol: valuation symbols are decoded, plain symbols match by name.
func HoldsAtSymbol(s alphabet.Symbol, name string) bool {
	if v, err := alphabet.ParseValuation(s); err == nil {
		return v.Holds(name)
	}
	return string(s) == name
}

// Evaluator computes truth sequences of formulas over one lasso word,
// memoizing shared subformulas.
type Evaluator struct {
	w    word.Lasso
	memo map[string]seq
	mLen int // |u|
	lLen int // |v|
}

// NewEvaluator prepares evaluation over the given lasso word.
func NewEvaluator(w word.Lasso) *Evaluator {
	return &Evaluator{
		w:    w,
		memo: map[string]seq{},
		mLen: w.PrefixLen(),
		lLen: w.LoopLen(),
	}
}

// EvalAt reports whether (σ, j) ⊨ f.
func (e *Evaluator) EvalAt(f ltl.Formula, j int) (bool, error) {
	s, err := e.sequence(f)
	if err != nil {
		return false, err
	}
	return s.at(j), nil
}

// Holds reports whether σ ⊨ f, i.e. (σ, 0) ⊨ f.
func (e *Evaluator) Holds(f ltl.Formula) (bool, error) { return e.EvalAt(f, 0) }

// TruthSequence returns the ultimately periodic truth sequence of f along
// the word, as (transient, loop) copies.
func (e *Evaluator) TruthSequence(f ltl.Formula) (pre, loop []bool, err error) {
	s, err := e.sequence(f)
	if err != nil {
		return nil, nil, err
	}
	return append([]bool(nil), s.pre...), append([]bool(nil), s.loop...), nil
}

func (e *Evaluator) sequence(f ltl.Formula) (seq, error) {
	key := f.String()
	if s, ok := e.memo[key]; ok {
		return s, nil
	}
	s, err := e.compute(f)
	if err != nil {
		return seq{}, err
	}
	e.memo[key] = s
	return s, nil
}

func (e *Evaluator) compute(f ltl.Formula) (seq, error) {
	switch t := f.(type) {
	case ltl.True:
		return seq{loop: []bool{true}}, nil
	case ltl.False:
		return seq{loop: []bool{false}}, nil
	case ltl.Prop:
		return makeSeq(e.mLen, e.lLen, func(j int) bool {
			return HoldsAtSymbol(e.w.At(j), t.Name)
		}), nil
	case ltl.Not:
		x, err := e.sequence(t.F)
		if err != nil {
			return seq{}, err
		}
		tt, ll := align(x)
		return makeSeq(tt, ll, func(j int) bool { return !x.at(j) }), nil
	case ltl.And:
		return e.binary(t.L, t.R, func(a, b bool) bool { return a && b })
	case ltl.Or:
		return e.binary(t.L, t.R, func(a, b bool) bool { return a || b })
	case ltl.Implies:
		return e.binary(t.L, t.R, func(a, b bool) bool { return !a || b })
	case ltl.Iff:
		return e.binary(t.L, t.R, func(a, b bool) bool { return a == b })
	case ltl.Next:
		x, err := e.sequence(t.F)
		if err != nil {
			return seq{}, err
		}
		tt, ll := align(x)
		return makeSeq(tt, ll, func(j int) bool { return x.at(j + 1) }), nil
	case ltl.Eventually:
		return e.untilSeq(ltl.True{}, t.F)
	case ltl.Always:
		// □f = ¬◇¬f.
		return e.sequence(ltl.Not{F: ltl.Eventually{F: ltl.Not{F: t.F}}})
	case ltl.Until:
		return e.untilSeq(t.L, t.R)
	case ltl.Unless:
		// L W R = (L U R) ∨ □L.
		return e.sequence(ltl.Or{L: ltl.Until{L: t.L, R: t.R}, R: ltl.Always{F: t.L}})
	case ltl.Prev:
		x, err := e.sequence(t.F)
		if err != nil {
			return seq{}, err
		}
		tt, ll := align(x)
		return makeSeq(tt+1, ll, func(j int) bool { return j > 0 && x.at(j-1) }), nil
	case ltl.WeakPrev:
		x, err := e.sequence(t.F)
		if err != nil {
			return seq{}, err
		}
		tt, ll := align(x)
		return makeSeq(tt+1, ll, func(j int) bool { return j == 0 || x.at(j-1) }), nil
	case ltl.Since:
		return e.pastRecurrence(t.L, t.R, false)
	case ltl.Back:
		// L B R = (L S R) ∨ □⁻L.
		return e.sequence(ltl.Or{L: ltl.Since{L: t.L, R: t.R}, R: ltl.Historically{F: t.L}})
	case ltl.Once:
		return e.pastRecurrence(ltl.True{}, t.F, false)
	case ltl.Historically:
		// □⁻f computed as its own recurrence: h(j) = f(j) ∧ h(j−1).
		return e.pastRecurrence(t.F, ltl.False{}, true)
	default:
		return seq{}, fmt.Errorf("eval: unknown formula %T", f)
	}
}

func (e *Evaluator) binary(l, r ltl.Formula, op func(a, b bool) bool) (seq, error) {
	x, err := e.sequence(l)
	if err != nil {
		return seq{}, err
	}
	y, err := e.sequence(r)
	if err != nil {
		return seq{}, err
	}
	tt, ll := align(x, y)
	return makeSeq(tt, ll, func(j int) bool { return op(x.at(j), y.at(j)) }), nil
}

// untilSeq computes L U R: at position j, scan forward; beyond one full
// period past the stabilization point the pattern repeats, so an
// unresolved scan means the least fixpoint is false.
func (e *Evaluator) untilSeq(l, r ltl.Formula) (seq, error) {
	x, err := e.sequence(l)
	if err != nil {
		return seq{}, err
	}
	y, err := e.sequence(r)
	if err != nil {
		return seq{}, err
	}
	tt, ll := align(x, y)
	at := func(j int) bool {
		hi := j
		if tt > hi {
			hi = tt
		}
		hi += ll
		for k := j; k <= hi; k++ {
			if y.at(k) {
				return true
			}
			if !x.at(k) {
				return false
			}
		}
		return false
	}
	return makeSeq(tt, ll, at), nil
}

// pastRecurrence computes L S R — s(j) = R(j) ∨ (L(j) ∧ s(j−1)) — or, when
// conj is true, □⁻L — h(j) = L(j) ∧ h(j−1). One extra period suffices for
// the (monotone, one-bit) per-period transfer function to stabilize.
func (e *Evaluator) pastRecurrence(l, r ltl.Formula, conj bool) (seq, error) {
	x, err := e.sequence(l)
	if err != nil {
		return seq{}, err
	}
	y, err := e.sequence(r)
	if err != nil {
		return seq{}, err
	}
	tt, ll := align(x, y)
	total := tt + 2*ll
	vals := make([]bool, total)
	prev := conj // s(−1): false for since, true for historically
	for j := 0; j < total; j++ {
		if conj {
			vals[j] = x.at(j) && prev
		} else {
			vals[j] = y.at(j) || (x.at(j) && prev)
		}
		prev = vals[j]
	}
	return seq{pre: vals[:tt+ll], loop: vals[tt+ll : total]}, nil
}

// Holds reports whether the lasso word satisfies the formula at position 0.
func Holds(f ltl.Formula, w word.Lasso) (bool, error) {
	sp := obs.Start("eval.holds").Stringer("formula", f).Int("prefix", w.PrefixLen()).Int("loop", w.LoopLen())
	defer sp.End()
	cntHoldsChecks.Inc()
	return NewEvaluator(w).Holds(f)
}

// At reports whether (σ, j) ⊨ f.
func At(f ltl.Formula, w word.Lasso, j int) (bool, error) {
	return NewEvaluator(w).EvalAt(f, j)
}

// EndSatisfies reports whether the non-empty finite word end-satisfies the
// past formula p: p holds at the word's last position (σ ⊩ p, the paper's
// esat relation). Future operators are rejected.
func EndSatisfies(p ltl.Formula, w word.Finite) (bool, error) {
	if len(w) == 0 {
		return false, fmt.Errorf("eval: end-satisfaction needs a non-empty word")
	}
	if !ltl.IsPastFormula(p) {
		return false, fmt.Errorf("eval: %v is not a past formula", p)
	}
	sp := obs.Start("eval.endsat").Stringer("formula", p).Int("length", len(w))
	defer sp.End()
	cntEndSatChecks.Inc()
	vals, err := evalPastForward(p, w)
	if err != nil {
		return false, err
	}
	return vals[len(w)-1], nil
}

// evalPastForward computes the truth of a past formula at every position
// of a finite word by the forward recurrences.
func evalPastForward(p ltl.Formula, w word.Finite) ([]bool, error) {
	memo := map[string][]bool{}
	var eval func(f ltl.Formula) ([]bool, error)
	eval = func(f ltl.Formula) ([]bool, error) {
		key := f.String()
		if v, ok := memo[key]; ok {
			return v, nil
		}
		n := len(w)
		out := make([]bool, n)
		switch t := f.(type) {
		case ltl.True:
			for j := range out {
				out[j] = true
			}
		case ltl.False:
			// all false
		case ltl.Prop:
			for j := range out {
				out[j] = HoldsAtSymbol(w[j], t.Name)
			}
		case ltl.Not:
			x, err := eval(t.F)
			if err != nil {
				return nil, err
			}
			for j := range out {
				out[j] = !x[j]
			}
		case ltl.And, ltl.Or, ltl.Implies, ltl.Iff:
			ch := ltl.Children(f)
			x, err := eval(ch[0])
			if err != nil {
				return nil, err
			}
			y, err := eval(ch[1])
			if err != nil {
				return nil, err
			}
			for j := range out {
				switch f.(type) {
				case ltl.And:
					out[j] = x[j] && y[j]
				case ltl.Or:
					out[j] = x[j] || y[j]
				case ltl.Implies:
					out[j] = !x[j] || y[j]
				default:
					out[j] = x[j] == y[j]
				}
			}
		case ltl.Prev:
			x, err := eval(t.F)
			if err != nil {
				return nil, err
			}
			for j := 1; j < n; j++ {
				out[j] = x[j-1]
			}
		case ltl.WeakPrev:
			x, err := eval(t.F)
			if err != nil {
				return nil, err
			}
			out[0] = true
			for j := 1; j < n; j++ {
				out[j] = x[j-1]
			}
		case ltl.Since:
			x, err := eval(t.L)
			if err != nil {
				return nil, err
			}
			y, err := eval(t.R)
			if err != nil {
				return nil, err
			}
			prev := false
			for j := 0; j < n; j++ {
				out[j] = y[j] || (x[j] && prev)
				prev = out[j]
			}
		case ltl.Back:
			return eval(ltl.Or{L: ltl.Since{L: t.L, R: t.R}, R: ltl.Historically{F: t.L}})
		case ltl.Once:
			x, err := eval(t.F)
			if err != nil {
				return nil, err
			}
			prev := false
			for j := 0; j < n; j++ {
				out[j] = x[j] || prev
				prev = out[j]
			}
		case ltl.Historically:
			x, err := eval(t.F)
			if err != nil {
				return nil, err
			}
			prev := true
			for j := 0; j < n; j++ {
				out[j] = x[j] && prev
				prev = out[j]
			}
		default:
			return nil, fmt.Errorf("eval: %v is not a past formula", f)
		}
		memo[key] = out
		return out, nil
	}
	return eval(p)
}

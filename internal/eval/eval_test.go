package eval_test

import (
	"math/rand"
	"testing"

	"repro/internal/alphabet"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/ltl"
	"repro/internal/word"
)

var ab = alphabet.MustLetters("ab")

func holds(t *testing.T, fstr string, w word.Lasso) bool {
	t.Helper()
	got, err := eval.Holds(ltl.MustParse(fstr), w)
	if err != nil {
		t.Fatalf("Holds(%s, %v): %v", fstr, w, err)
	}
	return got
}

func TestBasicSemantics(t *testing.T) {
	tests := []struct {
		f    string
		w    word.Lasso
		want bool
	}{
		{"a", word.MustLassoStrings("", "a"), true},
		{"a", word.MustLassoStrings("", "b"), false},
		{"X b", word.MustLassoStrings("a", "b"), true},
		{"X a", word.MustLassoStrings("a", "b"), false},
		{"F b", word.MustLassoStrings("aaa", "b"), true},
		{"F b", word.MustLassoStrings("", "a"), false},
		{"G a", word.MustLassoStrings("", "a"), true},
		{"G a", word.MustLassoStrings("aaa", "b"), false},
		{"G F b", word.MustLassoStrings("", "ab"), true},
		{"G F b", word.MustLassoStrings("bbb", "a"), false},
		{"F G b", word.MustLassoStrings("aaa", "b"), true},
		{"F G b", word.MustLassoStrings("", "ab"), false},
		{"a U b", word.MustLassoStrings("aa", "b"), true},
		{"b U b", word.MustLassoStrings("a", "b"), false},
		{"a W b", word.MustLassoStrings("", "a"), true},
		{"a U b", word.MustLassoStrings("", "a"), false},
	}
	for _, tt := range tests {
		if got := holds(t, tt.f, tt.w); got != tt.want {
			t.Errorf("%s on %v = %v, want %v", tt.f, tt.w, got, tt.want)
		}
	}
}

func TestUntilAtSecondPosition(t *testing.T) {
	// ab a^ω: a U b holds at 0 (a@0, b@1).
	w := word.MustLassoStrings("ab", "a")
	if !holds(t, "a U b", w) {
		t.Error("a U b should hold on ab a^ω")
	}
}

func TestPastSemantics(t *testing.T) {
	tests := []struct {
		f    string
		w    word.Lasso
		j    int
		want bool
	}{
		{"Y a", word.MustLassoStrings("ab", "b"), 1, true},
		{"Y a", word.MustLassoStrings("ab", "b"), 0, false},
		{"Z a", word.MustLassoStrings("ab", "b"), 0, true}, // weak prev at origin
		{"O a", word.MustLassoStrings("ab", "b"), 5, true},
		{"O b", word.MustLassoStrings("a", "a"), 3, false},
		{"H a", word.MustLassoStrings("aab", "b"), 1, true},
		{"H a", word.MustLassoStrings("aab", "b"), 2, false},
		{"b S a", word.MustLassoStrings("abb", "b"), 2, true},
		{"b S a", word.MustLassoStrings("bbb", "b"), 2, false},
		{"first", word.MustLassoStrings("ab", "b"), 0, true},
		{"first", word.MustLassoStrings("ab", "b"), 1, false},
	}
	for _, tt := range tests {
		got, err := eval.At(ltl.MustParse(tt.f), tt.w, tt.j)
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("(%v, %d) ⊨ %s = %v, want %v", tt.w, tt.j, tt.f, got, tt.want)
		}
	}
}

func TestValuationSymbols(t *testing.T) {
	// Words over 2^{p,q}.
	alpha, err := alphabet.Valuations([]string{"p", "q"})
	if err != nil {
		t.Fatal(err)
	}
	_ = alpha
	pq := alphabet.Valuation{"p": true, "q": true}.Symbol()
	p := alphabet.Valuation{"p": true}.Symbol()
	none := alphabet.Valuation{}.Symbol()
	w := word.MustLasso(word.Finite{p, none}, word.Finite{pq})
	if !holds(t, "p & !q", w) {
		t.Error("p & !q should hold initially")
	}
	if !holds(t, "X !p", w) {
		t.Error("X !p should hold")
	}
	if !holds(t, "F G (p & q)", w) {
		t.Error("F G (p & q) should hold")
	}
}

// TestExpansionLaws checks the standard fixpoint expansions pointwise on
// random formulas and words — a strong internal-consistency property of
// the evaluator.
func TestExpansionLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		p := gen.RandomFormula(rng, gen.FormulaOpts{Props: []string{"a", "b"}, MaxDepth: 2, AllowFuture: true, AllowPast: true})
		q := gen.RandomFormula(rng, gen.FormulaOpts{Props: []string{"a", "b"}, MaxDepth: 2, AllowFuture: true, AllowPast: true})
		w := gen.RandomLasso(rng, ab, 3, 3)
		ev := eval.NewEvaluator(w)

		laws := []struct {
			name string
			lhs  ltl.Formula
			rhs  ltl.Formula
		}{
			{"U expansion", ltl.Until{L: p, R: q}, ltl.Or{L: q, R: ltl.And{L: p, R: ltl.Next{F: ltl.Until{L: p, R: q}}}}},
			{"W expansion", ltl.Unless{L: p, R: q}, ltl.Or{L: q, R: ltl.And{L: p, R: ltl.Next{F: ltl.Unless{L: p, R: q}}}}},
			{"F expansion", ltl.Eventually{F: p}, ltl.Or{L: p, R: ltl.Next{F: ltl.Eventually{F: p}}}},
			{"G expansion", ltl.Always{F: p}, ltl.And{L: p, R: ltl.Next{F: ltl.Always{F: p}}}},
			{"S expansion", ltl.Since{L: p, R: q}, ltl.Or{L: q, R: ltl.And{L: p, R: ltl.Prev{F: ltl.Since{L: p, R: q}}}}},
			{"B expansion", ltl.Back{L: p, R: q}, ltl.Or{L: q, R: ltl.And{L: p, R: ltl.WeakPrev{F: ltl.Back{L: p, R: q}}}}},
			{"O expansion", ltl.Once{F: p}, ltl.Or{L: p, R: ltl.Prev{F: ltl.Once{F: p}}}},
			{"H expansion", ltl.Historically{F: p}, ltl.And{L: p, R: ltl.WeakPrev{F: ltl.Historically{F: p}}}},
			{"not U", ltl.Not{F: ltl.Until{L: p, R: q}}, ltl.Unless{L: ltl.Not{F: q}, R: ltl.And{L: ltl.Not{F: p}, R: ltl.Not{F: q}}}},
			{"F = true U", ltl.Eventually{F: p}, ltl.Until{L: ltl.True{}, R: p}},
			{"O = true S", ltl.Once{F: p}, ltl.Since{L: ltl.True{}, R: p}},
			{"W = U or G", ltl.Unless{L: p, R: q}, ltl.Or{L: ltl.Until{L: p, R: q}, R: ltl.Always{F: p}}},
			{"B = S or H", ltl.Back{L: p, R: q}, ltl.Or{L: ltl.Since{L: p, R: q}, R: ltl.Historically{F: p}}},
		}
		for _, law := range laws {
			for j := 0; j < 8; j++ {
				l, err := ev.EvalAt(law.lhs, j)
				if err != nil {
					t.Fatal(err)
				}
				r, err := ev.EvalAt(law.rhs, j)
				if err != nil {
					t.Fatal(err)
				}
				if l != r {
					t.Fatalf("%s fails at %d on %v: %v vs %v (p=%s, q=%s)",
						law.name, j, w, l, r, p.String(), q.String())
				}
			}
		}
	}
}

// TestNnfPreservesSemantics checks NNF against the evaluator on random
// formulas and words.
func TestNnfPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 400; trial++ {
		f := gen.RandomFormula(rng, gen.FormulaOpts{Props: []string{"a", "b"}, MaxDepth: 4, AllowFuture: true, AllowPast: true})
		w := gen.RandomLasso(rng, ab, 3, 3)
		ev := eval.NewEvaluator(w)
		for j := 0; j < 6; j++ {
			x, err := ev.EvalAt(f, j)
			if err != nil {
				t.Fatal(err)
			}
			y, err := ev.EvalAt(ltl.Nnf(f), j)
			if err != nil {
				t.Fatal(err)
			}
			if x != y {
				t.Fatalf("NNF changed semantics of %q at %d on %v", f.String(), j, w)
			}
		}
	}
}

// TestEndSatisfiesMatchesEvalAt cross-validates the two independent past
// evaluators: σ[0..j] ⊩ p iff (σ, j) ⊨ p for past p.
func TestEndSatisfiesMatchesEvalAt(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		p := gen.RandomFormula(rng, gen.FormulaOpts{Props: []string{"a", "b"}, MaxDepth: 4, AllowPast: true})
		w := gen.RandomLasso(rng, ab, 3, 3)
		ev := eval.NewEvaluator(w)
		for j := 0; j < 8; j++ {
			viaLasso, err := ev.EvalAt(p, j)
			if err != nil {
				t.Fatal(err)
			}
			viaEnd, err := eval.EndSatisfies(p, w.FinitePrefix(j+1))
			if err != nil {
				t.Fatal(err)
			}
			if viaLasso != viaEnd {
				t.Fatalf("end-satisfaction mismatch for %q at %d on %v: %v vs %v",
					p.String(), j, w, viaLasso, viaEnd)
			}
		}
	}
}

func TestEndSatisfiesErrors(t *testing.T) {
	if _, err := eval.EndSatisfies(ltl.MustParse("F a"), word.FiniteFromString("a")); err == nil {
		t.Error("future formula should be rejected")
	}
	if _, err := eval.EndSatisfies(ltl.MustParse("a"), nil); err == nil {
		t.Error("empty word should be rejected")
	}
}

func TestEndSatisfiesPaperExample(t *testing.T) {
	// The finitary property a*b is esat(b ∧ Y H a) — "b now, a at all
	// previous positions" (the paper's example, with ◯⁻□⁻ = Y H).
	p := ltl.MustParse("b & Z H a")
	cases := []struct {
		w    string
		want bool
	}{
		{"b", true}, {"ab", true}, {"aaab", true},
		{"a", false}, {"ba", false}, {"abb", false}, {"bb", false},
	}
	for _, tt := range cases {
		got, err := eval.EndSatisfies(p, word.FiniteFromString(tt.w))
		if err != nil {
			t.Fatal(err)
		}
		if got != tt.want {
			t.Errorf("esat(b & Z H a) on %q = %v, want %v", tt.w, got, tt.want)
		}
	}
}

func TestTruthSequence(t *testing.T) {
	f := ltl.MustParse("F b")
	w := word.MustLassoStrings("ab", "a")
	pre, loop, err := eval.NewEvaluator(w).TruthSequence(f)
	if err != nil {
		t.Fatal(err)
	}
	// F b: true at 0,1 (b at 1), false from 2 on.
	all := append(append([]bool{}, pre...), loop...)
	if !all[0] || !all[1] {
		t.Errorf("F b should hold at 0,1: %v", all)
	}
	for _, v := range loop {
		if v {
			t.Errorf("F b should be false on the loop: %v %v", pre, loop)
		}
	}
}

func TestHoldsAtSymbol(t *testing.T) {
	if !eval.HoldsAtSymbol("a", "a") || eval.HoldsAtSymbol("a", "b") {
		t.Error("plain symbol matching broken")
	}
	if !eval.HoldsAtSymbol("{p,q}", "p") || eval.HoldsAtSymbol("{p,q}", "r") {
		t.Error("valuation symbol matching broken")
	}
}

package temporal_test

// BenchmarkParallelSearch* measures the sharded state-space search at 1,
// 2, 4 and 8 workers: the omega lazy product exploration on the
// large-product conjoined-fairness family, and mc.VerifyCtx on the
// internal/ts protocol scenarios. Every parallel iteration's verdict is
// asserted bit-identical to the sequential oracle computed once per
// benchmark — a worker-count-dependent result fails the benchmark
// outright, so the speedup gate in scripts/bench.sh can never trade
// determinism for throughput. On hosts with at least 4 CPUs bench.sh
// additionally gates the large-product family at a >=1.8x speedup for 4
// workers; on smaller hosts the timing gate is skipped (logged) and only
// the 0-verdict-diff contract is enforced here.

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/ltl"
	"repro/internal/mc"
	"repro/internal/omega"
	"repro/internal/par"
	"repro/internal/ts"
)

var parallelWorkerCounts = []int{1, 2, 4, 8}

// bigFairnessContainment compiles the five-pair conjoined-fairness
// containment whose lazy product has 1024 states — large enough that the
// exploration shards its waves at the production thresholds.
func bigFairnessContainment(b *testing.B) (x, y *omega.Automaton) {
	b.Helper()
	props := []string{"p", "q", "r", "s", "u", "v", "w", "x", "y", "z"}
	eng := engine.New()
	x, err := eng.CompileFormula(context.Background(), ltl.MustParse(
		"(G F p -> G F q) & (G F r -> G F s) & (G F u -> G F v) & (G F w -> G F x) & (G F y -> G F z)"), props)
	if err != nil {
		b.Fatal(err)
	}
	y, err = eng.CompileFormula(context.Background(), ltl.MustParse(
		"G F q & G F s & G F v & G F x & G F z"), props)
	if err != nil {
		b.Fatal(err)
	}
	return x, y
}

// BenchmarkParallelSearchProduct is the speedup-gated family: the full
// lazy containment over the 1024-state product per worker count.
func BenchmarkParallelSearchProduct(b *testing.B) {
	x, y := bigFairnessContainment(b)
	seqOK, seqW, err := x.ContainsCtx(context.Background(), y)
	if err != nil {
		b.Fatal(err)
	}
	for _, jobs := range parallelWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", jobs), func(b *testing.B) {
			ctx := par.WithJobs(context.Background(), jobs)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ok, w, err := x.ContainsCtx(ctx, y)
				if err != nil {
					b.Fatal(err)
				}
				if ok != seqOK || !reflect.DeepEqual(w, seqW) {
					b.Fatalf("workers=%d: verdict diverged from sequential", jobs)
				}
			}
		})
	}
}

// BenchmarkParallelSearchVerify model-checks the protocol scenarios per
// worker count, with the verdicts pinned to the sequential oracle's.
func BenchmarkParallelSearchVerify(b *testing.B) {
	coherence, err := ts.CacheCoherence(5)
	if err != nil {
		b.Fatal(err)
	}
	ring, err := ts.RingMutex(8, ts.Strong)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		sys     *ts.System
		formula string
	}{
		{"coherence5", coherence, "G (wr0 -> F m0)"},
		{"ring8", ring, "G (w0 -> F c0)"},
	} {
		f := ltl.MustParse(tc.formula)
		seq, err := mc.VerifyCtx(context.Background(), tc.sys, f)
		if err != nil {
			b.Fatal(err)
		}
		for _, jobs := range parallelWorkerCounts {
			b.Run(fmt.Sprintf("%s/workers=%d", tc.name, jobs), func(b *testing.B) {
				ctx := par.WithJobs(context.Background(), jobs)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := mc.VerifyCtx(ctx, tc.sys, f)
					if err != nil {
						b.Fatal(err)
					}
					if res.Holds != seq.Holds || !reflect.DeepEqual(res.Counterexample, seq.Counterexample) {
						b.Fatalf("%s workers=%d: result diverged from sequential", tc.name, jobs)
					}
				}
			})
		}
	}
}

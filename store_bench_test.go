package temporal_test

// Benchmarks for the persistent verdict store (PR 8). The cold/warm
// pair is the warm-start value proposition in numbers: each iteration
// boots a FRESH engine (so the in-memory memo cache starts empty) and
// classifies the same suite — cold engines compute every verdict, warm
// engines re-serve them from the verdict log seeded before the timed
// loop. scripts/bench.sh gates warm ≥ 2x faster than cold. The
// remaining families price the store's moving parts in isolation:
// lookup cost on the serving path, put cost on the write-behind path,
// and the open-time recovery scan that warm starts pay once per boot.

import (
	"context"
	"fmt"
	"path/filepath"
	"testing"

	temporal "repro"
	"repro/internal/ltl"
)

// benchSuite is the classified corpus: the six canonical formulas of
// the hierarchy plus rank-bearing variants, big enough that verdict
// recomputation dominates engine construction.
var benchSuite = []string{
	"G !(c1 & c2)",
	"F done",
	"G p | F q",
	"G (req -> F ack)",
	"F G stable",
	"G F e -> G F t",
	"(G F a -> G F b) & (G F c -> G F d)",
	"G (a -> F b) & G (c -> F d)",
}

func classifySuite(b *testing.B, eng *temporal.Engine) {
	b.Helper()
	ctx := context.Background()
	for _, src := range benchSuite {
		if _, err := eng.ClassifyFormula(ctx, ltl.MustParse(src), nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreColdStart: fresh engine, empty store — every verdict is
// computed and persisted. This is the baseline the warm gate divides.
func BenchmarkStoreColdStart(b *testing.B) {
	dir := b.TempDir()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A distinct path per iteration keeps every run genuinely cold:
		// reusing one path would warm-start iterations 2..N.
		eng := temporal.NewEngine(temporal.WithPersistentStore(
			filepath.Join(dir, fmt.Sprintf("cold-%d.log", i))))
		classifySuite(b, eng)
		if err := eng.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreWarmStart: fresh engine per iteration against a store
// seeded once — every verdict is served from disk. The bench.sh
// warm-restart gate requires this to run at least 2x faster than
// BenchmarkStoreColdStart.
func BenchmarkStoreWarmStart(b *testing.B) {
	path := filepath.Join(b.TempDir(), "warm.log")
	seed := temporal.NewEngine(temporal.WithPersistentStore(path))
	classifySuite(b, seed)
	if err := seed.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := temporal.NewEngine(temporal.WithPersistentStore(path))
		classifySuite(b, eng)
		st := eng.StoreStats()
		if st.Hits == 0 {
			b.Fatalf("warm iteration served nothing from disk: %+v", st)
		}
		if err := eng.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreInMemoryBaseline prices the same suite with no store at
// all — the figure cold starts should sit near (persistence is
// write-behind, so the write path must not tax the serving path).
func BenchmarkStoreInMemoryBaseline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := temporal.NewEngine()
		classifySuite(b, eng)
		if err := eng.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreOpenScan prices warm-start recovery itself: opening a
// seeded log replays its records through CRC check and strict decode
// into the index. One open+close per iteration, no queries.
func BenchmarkStoreOpenScan(b *testing.B) {
	path := filepath.Join(b.TempDir(), "scan.log")
	seed := temporal.NewEngine(temporal.WithPersistentStore(path))
	classifySuite(b, seed)
	if err := seed.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := temporal.NewEngine(temporal.WithPersistentStore(path))
		if st := eng.StoreStats(); !st.Enabled || st.Records == 0 {
			b.Fatalf("scan produced no records: %+v", st)
		}
		if err := eng.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// Command benchjson turns `go test -bench` output into a stable JSON
// snapshot and gates benchmark regressions.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -pr pr4 -o BENCH_pr4.json
//	benchjson -i bench.txt -compare BENCH_pr3.json -tolerance 0.25
//
// The snapshot records, per benchmark, ns/op, allocs/op and — when the
// benchmark reports the custom metric — states/op (product states
// materialized per operation, the lazy-exploration layer's figure of
// merit).
//
// Two gates, both optional:
//
//   - -compare PREV [-tolerance T] [-allocs-tolerance A]: every
//     benchmark present in both snapshots must not regress its ns/op by
//     more than the tolerance fraction (default 0.25), nor its allocs/op
//     by more than the allocs tolerance (default 0.25; negative
//     disables). New and removed benchmarks are reported but do not fail
//     the gate.
//   - -lazy-gate FAMILIES (default "Shallow,Witness"): for every
//     benchmark family X matching one of the comma-separated substrings
//     and exposing both X/lazy and X/eager variants, the lazy variant
//     must materialize at most half the eager variant's states/op; with
//     -ns-gate, it must additionally not be slower than the eager
//     variant. The states gate is deterministic (state counts do not
//     jitter), so it runs even at -benchtime=1x; the ns gate is only
//     meaningful on real benchtimes. Pass -lazy-gate "" to disable.
//
// Exit status 1 on any gate violation, with one diagnostic per line on
// stderr.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one benchmark's measurements.
type Benchmark struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	StatesPerOp float64 `json:"states_per_op,omitempty"`
}

// Snapshot is the JSON document benchjson reads and writes.
type Snapshot struct {
	PR         string      `json:"pr"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	pr := flag.String("pr", "", "PR label recorded in the snapshot")
	in := flag.String("i", "", "input file with go test -bench output (default stdin)")
	out := flag.String("o", "", "write the JSON snapshot here (default stdout)")
	compare := flag.String("compare", "", "previous snapshot to gate ns/op regressions against")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional ns/op regression vs -compare")
	allocsTolerance := flag.Float64("allocs-tolerance", 0.25,
		"allowed fractional allocs/op regression vs -compare (negative disables)")
	lazyGate := flag.String("lazy-gate", "Shallow,Witness",
		"comma-separated family substrings whose lazy variant must materialize ≤ half the eager states (empty disables)")
	nsGate := flag.Bool("ns-gate", false, "also require lazy ≤ eager ns/op on the gated families")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	snap, err := parse(r, *pr)
	if err != nil {
		return err
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines in input")
	}

	var failures []string
	if *lazyGate != "" {
		failures = append(failures, gateLazy(snap, strings.Split(*lazyGate, ","), *nsGate)...)
	}
	if *compare != "" {
		prev, err := load(*compare)
		if err != nil {
			return err
		}
		failures = append(failures, gateRegression(prev, snap, *tolerance, *allocsTolerance)...)
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
	} else {
		os.Stdout.Write(data)
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchjson: FAIL:", f)
		}
		return fmt.Errorf("%d gate violation(s)", len(failures))
	}
	return nil
}

// parse extracts benchmark result lines from go test output. Repeated
// runs of one benchmark (from -count) are averaged.
func parse(r io.Reader, pr string) (*Snapshot, error) {
	sums := map[string]*Benchmark{}
	counts := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := stripProcSuffix(m[1])
		b := sums[name]
		if b == nil {
			b = &Benchmark{Name: name}
			sums[name] = b
		}
		counts[name]++
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark %s: bad value %q", name, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp += v
			case "allocs/op":
				b.AllocsPerOp += v
			case "B/op":
				b.BytesPerOp += v
			case "states/op":
				b.StatesPerOp += v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	snap := &Snapshot{PR: pr}
	for name, b := range sums {
		n := float64(counts[name])
		snap.Benchmarks = append(snap.Benchmarks, Benchmark{
			Name:        name,
			NsPerOp:     b.NsPerOp / n,
			AllocsPerOp: b.AllocsPerOp / n,
			BytesPerOp:  b.BytesPerOp / n,
			StatesPerOp: b.StatesPerOp / n,
		})
	}
	sort.Slice(snap.Benchmarks, func(i, j int) bool {
		return snap.Benchmarks[i].Name < snap.Benchmarks[j].Name
	})
	return snap, nil
}

// stripProcSuffix removes the -GOMAXPROCS suffix go test appends to
// benchmark names, so snapshots compare across machines.
func stripProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &s, nil
}

// gateLazy enforces the lazy-vs-eager contract on matching families.
func gateLazy(snap *Snapshot, families []string, nsGate bool) []string {
	byName := map[string]Benchmark{}
	for _, b := range snap.Benchmarks {
		byName[b.Name] = b
	}
	var failures []string
	gated := 0
	for _, b := range snap.Benchmarks {
		if !strings.HasSuffix(b.Name, "/lazy") {
			continue
		}
		family := strings.TrimSuffix(b.Name, "/lazy")
		match := false
		for _, f := range families {
			if f != "" && strings.Contains(family, f) {
				match = true
				break
			}
		}
		if !match {
			continue
		}
		eager, ok := byName[family+"/eager"]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s has no /eager counterpart to gate against", b.Name))
			continue
		}
		gated++
		if b.StatesPerOp <= 0 || eager.StatesPerOp <= 0 {
			failures = append(failures, fmt.Sprintf("%s: states/op metric missing (lazy %.1f, eager %.1f)",
				family, b.StatesPerOp, eager.StatesPerOp))
			continue
		}
		if b.StatesPerOp > eager.StatesPerOp/2 {
			failures = append(failures, fmt.Sprintf(
				"%s: lazy materializes %.1f states/op, want ≤ half of eager's %.1f",
				family, b.StatesPerOp, eager.StatesPerOp))
		}
		if nsGate && b.NsPerOp > eager.NsPerOp {
			failures = append(failures, fmt.Sprintf(
				"%s: lazy %.0f ns/op slower than eager %.0f ns/op",
				family, b.NsPerOp, eager.NsPerOp))
		}
	}
	if gated == 0 {
		failures = append(failures, fmt.Sprintf(
			"no benchmark family matched the lazy gate %v — wrong -bench filter?", families))
	}
	return failures
}

// gateRegression compares ns/op (and, unless disabled, allocs/op)
// against a previous snapshot. Allocation counts are near-deterministic,
// so the allocs gate catches hot-path regressions that timing jitter
// would hide.
func gateRegression(prev, cur *Snapshot, tolerance, allocsTolerance float64) []string {
	prevBy := map[string]Benchmark{}
	for _, b := range prev.Benchmarks {
		prevBy[b.Name] = b
	}
	var failures []string
	for _, b := range cur.Benchmarks {
		p, ok := prevBy[b.Name]
		if !ok {
			continue // new benchmark: nothing to compare
		}
		if p.NsPerOp > 0 {
			ratio := b.NsPerOp / p.NsPerOp
			if ratio > 1+tolerance && !almostEqual(b.NsPerOp, p.NsPerOp) {
				failures = append(failures, fmt.Sprintf(
					"%s: %.0f ns/op vs %s's %.0f (%.2fx > allowed %.2fx)",
					b.Name, b.NsPerOp, prev.PR, p.NsPerOp, ratio, 1+tolerance))
			}
		}
		if allocsTolerance >= 0 && p.AllocsPerOp > 0 {
			ratio := b.AllocsPerOp / p.AllocsPerOp
			if ratio > 1+allocsTolerance && !almostEqual(b.AllocsPerOp, p.AllocsPerOp) {
				failures = append(failures, fmt.Sprintf(
					"%s: %.1f allocs/op vs %s's %.1f (%.2fx > allowed %.2fx)",
					b.Name, b.AllocsPerOp, prev.PR, p.AllocsPerOp, ratio, 1+allocsTolerance))
			}
		}
	}
	return failures
}

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

// Command temporald is the classification daemon: a long-lived process
// serving temporal-hierarchy classification over HTTP, fronted by the
// introspection surface of internal/obshttp. It is the
// classification-as-a-service skeleton: one POST /classify endpoint over
// a shared temporal.Engine (so the memo cache warms across requests),
// plus /metrics, /healthz, /debug/vars and /debug/pprof for operations.
//
// Every request is minted a TraceID, returned in the X-Trace-Id response
// header and JSON body; with -trace or -slow-op-log attached the same id
// stamps the request's JSONL span records, so a slow scrape-side latency
// observation joins to its server-side trace by grep.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	temporal "repro"
	"repro/internal/budget"
	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/obshttp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "temporald:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("temporald", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8123", "listen address (use :0 for an ephemeral port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening (for scripts binding :0)")
	cache := fs.Int("cache", 0, "engine memo-cache entries (0 = default)")
	slowOpLog := fs.String("slow-op-log", "", "slow-op JSONL destination (default stderr)")
	probe := fs.String("probe", "", "client mode: GET /healthz and /metrics from a running daemon at this address, print to stdout, exit")
	probeClassify := fs.String("classify", "", "with -probe: POST this formula to /classify first and print the response (a curl-free smoke client)")
	// The daemon shares the fleet-wide -jobs/-budget/-trace/-slow-op
	// knobs (plus -store for cross-restart warm starts) but owns
	// -timeout: it is a per-request deadline here, not a run deadline, so
	// it is bound directly with its own default.
	common := cli.Register(fs, cli.FlagJobs|cli.FlagBudget|cli.FlagTrace|cli.FlagSlowOp|cli.FlagStore)
	fs.DurationVar(&common.Timeout, "timeout", 30*time.Second, "per-request wall-clock deadline (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *probe != "" {
		return runProbe(*probe, *probeClassify, stdout)
	}

	if *slowOpLog != "" {
		f, err := os.Create(*slowOpLog)
		if err != nil {
			return err
		}
		defer f.Close()
		common.SlowOpW = f
	}
	finish, err := common.SetupObs(stderr)
	if err != nil {
		return err
	}
	defer func() { _ = finish() }()

	// The per-request budget is attached by the handler (so spend is
	// readable per response), not via engine options: only cache and
	// parallelism configure the shared engine.
	srv := newServer(common.EngineOptions(cacheOpts(*cache)...), common.Timeout, common.Budget)
	srv.eng.RegisterStatsGauges(nil)
	mux := obshttp.NewMux(nil, srv.storeHealth)
	mux.Handle("/classify", srv)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(stderr, "temporald: listening on http://%s (POST /classify, GET /metrics)\n", ln.Addr())

	httpSrv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(stderr, "temporald: %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := httpSrv.Shutdown(ctx)
		// In-flight requests are done; flush write-behind verdicts so the
		// next boot warm-starts from everything this process computed.
		if ferr := common.FinishEngine(srv.eng, stderr); err == nil {
			err = ferr
		}
		return err
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}

func cacheOpts(cache int) []temporal.EngineOption {
	if cache > 0 {
		return []temporal.EngineOption{temporal.WithCacheSize(cache)}
	}
	return nil
}

// server is the /classify handler over one shared engine.
type server struct {
	eng          *temporal.Engine
	timeout      time.Duration
	budgetStates int64

	histLatency *obs.Histogram
}

func newServer(opts []temporal.EngineOption, timeout time.Duration, budgetStates int64) *server {
	return &server{
		eng:          temporal.NewEngine(opts...),
		timeout:      timeout,
		budgetStates: budgetStates,
		histLatency:  obs.NewHistogram("temporald.classify.latency_us"),
	}
}

// storeHealth contributes the verdict store's circuit state to
// /healthz: whether the persistent tier is serving, how many records it
// holds, and — when it has self-disabled — why. Daemons without -store
// report enabled=false with an empty reason.
func (s *server) storeHealth() map[string]any {
	st := s.eng.StoreStats()
	h := map[string]any{
		"store_enabled": st.Enabled,
		"store_records": st.Records,
	}
	if st.Reason != "" {
		h["store_reason"] = st.Reason
	}
	return h
}

// classifyRequest is the POST /classify body.
type classifyRequest struct {
	Formula string   `json:"formula"`
	Props   []string `json:"props,omitempty"`
}

// classifyResponse is the success body. Error responses carry
// {"trace_id","error"} with a matching HTTP status instead.
type classifyResponse struct {
	TraceID        string   `json:"trace_id"`
	Formula        string   `json:"formula"`
	Class          string   `json:"class"`
	Classes        []string `json:"classes"`
	ObligationRank int      `json:"obligation_rank,omitempty"`
	ReactivityRank int      `json:"reactivity_rank"`
	States         int      `json:"states"`
	Pairs          int      `json:"pairs"`
	// Plan is the query-planner tier the compiled automaton lands in
	// (from the semantic probe) with the planner's one-line rationale —
	// the service form of speccheck -explain.
	Plan       string `json:"plan"`
	PlanReason string `json:"plan_reason,omitempty"`
	// BudgetStates/BudgetSteps report the request's spend against the
	// daemon's -budget governance (absent when unlimited).
	BudgetStates int64 `json:"budget_states,omitempty"`
	BudgetSteps  int64 `json:"budget_steps,omitempty"`
	DurationUS   int64 `json:"duration_us"`
}

// respCounter returns the labeled response counter for an HTTP status.
// The label set is the closed set of statuses this handler emits, so
// cardinality is bounded by construction.
func respCounter(code int) *obs.Counter {
	return obs.Default().Counter("temporald.responses",
		obs.Label{Key: "code", Value: strconv.Itoa(code)})
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ctx, id := obs.EnsureTraceID(r.Context())
	w.Header().Set("X-Trace-Id", string(id))
	w.Header().Set("Content-Type", "application/json")

	code, body := s.handle(ctx, r, id)
	respCounter(code).Inc()
	s.histLatency.Observe(time.Since(start).Microseconds())
	w.WriteHeader(code)
	if resp, ok := body.(*classifyResponse); ok {
		resp.DurationUS = time.Since(start).Microseconds()
	}
	_ = json.NewEncoder(w).Encode(body)
}

// handle runs the request and returns status plus response body —
// either *classifyResponse or an errorBody.
func (s *server) handle(ctx context.Context, r *http.Request, id obs.TraceID) (int, any) {
	fail := func(code int, err error) (int, any) {
		return code, map[string]string{"trace_id": string(id), "error": err.Error()}
	}
	if r.Method != http.MethodPost {
		return fail(http.StatusMethodNotAllowed, errors.New("use POST"))
	}
	var req classifyRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		return fail(http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
	}
	f, err := temporal.ParseFormula(req.Formula)
	if err != nil {
		return fail(http.StatusBadRequest, err)
	}
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	// Attach the per-request budget here rather than via engine options
	// so the handler can read the spend back for the response. Planner
	// probes and fast paths charge the same meter as every other
	// analysis, and a budget abort inside the planner propagates (it
	// never falls back), so exhaustion maps to 503 on every path.
	var bud *budget.Budget
	if s.budgetStates > 0 {
		bud = budget.New(s.budgetStates, 64*s.budgetStates)
		ctx = budget.With(ctx, bud)
	}
	aut, err := s.eng.CompileFormula(ctx, f, req.Props)
	if err != nil {
		return fail(statusFor(err), err)
	}
	c, err := s.eng.ClassifyAutomaton(ctx, aut)
	if err != nil {
		return fail(statusFor(err), err)
	}
	_, dec, err := s.eng.PlanAutomaton(ctx, aut)
	if err != nil {
		return fail(statusFor(err), err)
	}
	classes := make([]string, 0, 6)
	for _, cl := range c.Classes() {
		classes = append(classes, cl.String())
	}
	resp := &classifyResponse{
		TraceID:        string(id),
		Formula:        f.String(),
		Class:          c.Lowest().String(),
		Classes:        classes,
		ObligationRank: c.ObligationRank,
		ReactivityRank: c.ReactivityRank,
		States:         aut.NumStates(),
		Pairs:          aut.NumPairs(),
		Plan:           dec.Tier.String(),
		PlanReason:     dec.Reason,
	}
	if bud != nil {
		resp.BudgetStates = bud.States()
		resp.BudgetSteps = bud.Steps()
	}
	return http.StatusOK, resp
}

// statusFor maps engine errors onto HTTP statuses: resource exhaustion
// and timeouts are the service's fault or load (503), panics are bugs
// (500), anything else in a parsed-and-compiled request is a bad input
// (400).
func statusFor(err error) int {
	var ierr *temporal.InternalError
	switch {
	case errors.Is(err, temporal.ErrBudgetExceeded):
		return http.StatusServiceUnavailable
	case errors.Is(err, temporal.ErrCanceled),
		errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	case errors.As(err, &ierr):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// runProbe is the -probe client mode: it fetches /healthz and /metrics
// from a running daemon and prints both to stdout. With a -classify
// formula it first POSTs that to /classify and prints the verdict, so a
// shell script can exercise the full request path — scripts/check.sh
// uses it as a self-contained smoke client, avoiding a curl dependency.
func runProbe(addr, formula string, w io.Writer) error {
	client := &http.Client{Timeout: 5 * time.Second}
	if formula != "" {
		reqBody, err := json.Marshal(classifyRequest{Formula: formula})
		if err != nil {
			return err
		}
		resp, err := client.Post("http://"+addr+"/classify", "application/json", bytes.NewReader(reqBody))
		if err != nil {
			return err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST /classify: %s: %s", resp.Status, body)
		}
		fmt.Fprintf(w, "== /classify ==\n%s", body)
	}
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := client.Get("http://" + addr + path)
		if err != nil {
			return err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: %s", path, resp.Status)
		}
		fmt.Fprintf(w, "== %s ==\n%s", path, body)
	}
	return nil
}

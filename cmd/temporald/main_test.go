package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	temporal "repro"
	"repro/internal/obs"
	"repro/internal/obshttp"
)

// newTestMux assembles the daemon's full surface the way run() does.
func newTestMux(t *testing.T, srv *server) *http.ServeMux {
	t.Helper()
	mux := obshttp.NewMux(nil)
	mux.Handle("/classify", srv)
	return mux
}

func postClassify(t *testing.T, h http.Handler, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/classify", strings.NewReader(body))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	var rec map[string]any
	if err := json.Unmarshal(rr.Body.Bytes(), &rec); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, rr.Body.String())
	}
	return rr, rec
}

func TestClassifyEndpoint(t *testing.T) {
	srv := newServer(nil, time.Minute, 0)
	mux := newTestMux(t, srv)

	rr, rec := postClassify(t, mux, `{"formula":"G F p"}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("POST /classify = %d: %v", rr.Code, rec)
	}
	if rec["class"] != "recurrence" {
		t.Errorf("class = %v, want recurrence", rec["class"])
	}
	id, _ := rec["trace_id"].(string)
	if len(id) != 16 {
		t.Errorf("trace_id = %q, want 16 hex digits", id)
	}
	if rr.Header().Get("X-Trace-Id") != id {
		t.Errorf("X-Trace-Id header %q != body trace_id %q", rr.Header().Get("X-Trace-Id"), id)
	}
	if rec["states"].(float64) <= 0 {
		t.Errorf("states = %v", rec["states"])
	}

	// A second request must mint a different id.
	_, rec2 := postClassify(t, mux, `{"formula":"F p"}`)
	if rec2["trace_id"] == id {
		t.Error("two requests shared a trace id")
	}
	if rec2["class"] != "guarantee" {
		t.Errorf("class = %v, want guarantee", rec2["class"])
	}
}

func TestClassifyErrors(t *testing.T) {
	srv := newServer(nil, time.Minute, 0)
	mux := newTestMux(t, srv)

	get := httptest.NewRequest(http.MethodGet, "/classify", nil)
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, get)
	if rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /classify = %d, want 405", rr.Code)
	}

	for body, want := range map[string]int{
		`{"formula":"G F (`: http.StatusBadRequest, // parse error
		`not json`:          http.StatusBadRequest,
	} {
		rr, rec := postClassify(t, mux, body)
		if rr.Code != want {
			t.Errorf("POST %q = %d, want %d", body, rr.Code, want)
		}
		if rec["error"] == "" || rec["trace_id"] == "" {
			t.Errorf("error body must carry error and trace_id: %v", rec)
		}
	}
}

func TestClassifyBudgetExceededIs503(t *testing.T) {
	srv := newServer(nil, time.Minute, 1)
	mux := newTestMux(t, srv)
	rr, rec := postClassify(t, mux, `{"formula":"(G F a -> G F b) & (G F c -> G F d) & (G F e -> G F f)"}`)
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("budget-capped classify = %d (%v), want 503", rr.Code, rec)
	}
	if obs.Default().Counter("budget.exceeded").Value() == 0 {
		t.Error("budget.exceeded counter did not move")
	}
}

// TestMetricsExposesEngineCounters is the acceptance check: after a
// classify request, the daemon's /metrics output is Prometheus text
// containing the engine, lazy-materialization, budget and panic-recovery
// families.
func TestMetricsExposesEngineCounters(t *testing.T) {
	srv := newServer(nil, time.Minute, 0)
	mux := newTestMux(t, srv)
	if rr, rec := postClassify(t, mux, `{"formula":"G p | F q"}`); rr.Code != http.StatusOK {
		t.Fatalf("classify = %d: %v", rr.Code, rec)
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rr.Code)
	}
	body := rr.Body.String()
	for _, name := range []string{
		"engine_cache_hits",
		"engine_cache_misses",
		"engine_classify_calls",
		"omega_lazy_states_materialized",
		"budget_exceeded",
		"engine_panics_recovered",
		"temporald_classify_latency_us_bucket",
		`temporald_responses{code="200"}`,
	} {
		if !strings.Contains(body, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	// Parseability: every non-comment line is "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("unparseable exposition line %q", line)
		}
	}
}

// TestClassifyTraceJSONL: with a JSONL sink attached, a classify request
// leaves span records stamped with the response's trace id.
func TestClassifyTraceJSONL(t *testing.T) {
	var buf bytes.Buffer
	j := obs.NewJSONLSink(&buf)
	obs.Attach(j)
	defer obs.Detach()

	srv := newServer(nil, time.Minute, 0)
	mux := newTestMux(t, srv)
	rr, rec := postClassify(t, mux, `{"formula":"p U q"}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("classify = %d: %v", rr.Code, rec)
	}
	obs.Detach()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	id := rec["trace_id"].(string)
	stamp := fmt.Sprintf("%q:%q", "trace_id", id)
	if !strings.Contains(buf.String(), stamp) {
		t.Fatalf("JSONL trace has no records for trace id %s:\n%.400s", id, buf.String())
	}
	if !strings.Contains(buf.String(), `"name":"engine.request"`) {
		t.Error("trace missing engine.request root span")
	}
}

func TestStatusFor(t *testing.T) {
	if got := statusFor(fmt.Errorf("boom")); got != http.StatusBadRequest {
		t.Errorf("generic error → %d, want 400", got)
	}
}

func TestProbeAgainstLiveMux(t *testing.T) {
	ts := httptest.NewServer(newTestMux(t, newServer(nil, time.Minute, 0)))
	defer ts.Close()
	var out bytes.Buffer
	if err := runProbe(strings.TrimPrefix(ts.URL, "http://"), "", &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"status":"ok"`) || !strings.Contains(out.String(), "engine_cache_hits") {
		t.Errorf("probe output incomplete:\n%.300s", out.String())
	}
}

// TestClassifyReportsPlanAndBudget: responses carry the planner tier for
// the compiled requirement plus the request's budget spend when the
// daemon runs governed.
func TestClassifyReportsPlanAndBudget(t *testing.T) {
	srv := newServer(nil, time.Minute, 10_000)
	mux := newTestMux(t, srv)

	rr, rec := postClassify(t, mux, `{"formula":"G !(c1 & c2)"}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("classify = %d: %v", rr.Code, rec)
	}
	if rec["plan"] != "safety" {
		t.Errorf("plan = %v, want safety for an invariant", rec["plan"])
	}
	if reason, _ := rec["plan_reason"].(string); reason == "" {
		t.Error("plan_reason should explain the tier choice")
	}
	if spent, _ := rec["budget_states"].(float64); spent <= 0 {
		t.Errorf("budget_states = %v, want positive spend under -budget", rec["budget_states"])
	}

	// An ungoverned server omits the spend fields but still plans.
	free := newServer(nil, time.Minute, 0)
	_, rec = postClassify(t, newTestMux(t, free), `{"formula":"G F p"}`)
	if rec["plan"] != "recurrence" {
		t.Errorf("plan = %v, want recurrence for G F p", rec["plan"])
	}
	if _, present := rec["budget_states"]; present {
		t.Error("budget_states should be omitted when the daemon is unlimited")
	}
}

// TestWarmStartAcrossRestart is the daemon-level warm-start contract: a
// second "boot" of the serving engine against the same -store path
// answers the same request from disk, visible in /healthz (store
// records) and the store hit counters — the check.sh smoke in test
// form.
func TestWarmStartAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.log")
	opts := []temporal.EngineOption{temporal.WithPersistentStore(path)}

	boot1 := newServer(opts, time.Minute, 0)
	mux1 := newTestMux(t, boot1)
	if rr, rec := postClassify(t, mux1, `{"formula":"G (req -> F ack)"}`); rr.Code != http.StatusOK {
		t.Fatalf("boot1 classify = %d: %v", rr.Code, rec)
	}
	// The drain path: flush write-behind verdicts before "exit".
	if err := boot1.eng.Close(); err != nil {
		t.Fatal(err)
	}

	boot2 := newServer(opts, time.Minute, 0)
	mux2 := obshttp.NewMux(nil, boot2.storeHealth)
	mux2.Handle("/classify", boot2)
	rr, rec := postClassify(t, mux2, `{"formula":"G (req -> F ack)"}`)
	if rr.Code != http.StatusOK {
		t.Fatalf("boot2 classify = %d: %v", rr.Code, rec)
	}
	if rec["class"] != "recurrence" {
		t.Errorf("warm class = %v, want recurrence", rec["class"])
	}
	st := boot2.eng.StoreStats()
	if st.Hits == 0 {
		t.Fatalf("second boot served no disk-warm verdicts: %+v", st)
	}

	// /healthz must report the store's circuit state and record count.
	hreq := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	hrr := httptest.NewRecorder()
	mux2.ServeHTTP(hrr, hreq)
	var health map[string]any
	if err := json.Unmarshal(hrr.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health["store_enabled"] != true {
		t.Errorf("healthz store_enabled = %v", health["store_enabled"])
	}
	if n, _ := health["store_records"].(float64); n <= 0 {
		t.Errorf("healthz store_records = %v, want > 0", health["store_records"])
	}
	if err := boot2.eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreHealthWithoutStore: a daemon booted without -store reports a
// disabled store rather than omitting the field.
func TestStoreHealthWithoutStore(t *testing.T) {
	srv := newServer(nil, time.Minute, 0)
	h := srv.storeHealth()
	if h["store_enabled"] != false {
		t.Errorf("store_enabled = %v, want false without -store", h["store_enabled"])
	}
}

// TestProbeClassify covers the -probe -classify client mode end to end
// against a live mux.
func TestProbeClassify(t *testing.T) {
	ts := httptest.NewServer(newTestMux(t, newServer(nil, time.Minute, 0)))
	defer ts.Close()
	var out bytes.Buffer
	if err := runProbe(strings.TrimPrefix(ts.URL, "http://"), "G F p", &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"== /classify ==", `"class":"recurrence"`, `"status":"ok"`, "engine_cache_hits"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("probe output missing %q:\n%.400s", want, out.String())
		}
	}
	// A bad formula surfaces the server's diagnostic as an error.
	if err := runProbe(strings.TrimPrefix(ts.URL, "http://"), "G (p", &out); err == nil {
		t.Error("probe accepted a parse failure")
	}
}

// Command hierarchy regenerates every table and figure of the paper:
// each experiment re-derives one artifact and reports paper-expected
// versus measured. Run with no arguments for all experiments, or pass
// experiment ids (E1 … E14) to select.
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	want := map[string]bool{}
	for _, a := range args {
		want[strings.ToUpper(a)] = true
	}
	reports := experiments.All()
	exit := 0
	for _, r := range reports {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		fmt.Print(experiments.Render(r))
		fmt.Println()
		if !r.OK {
			exit = 1
		}
	}
	return exit
}

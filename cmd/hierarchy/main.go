// Command hierarchy regenerates every table and figure of the paper:
// each experiment re-derives one artifact and reports paper-expected
// versus measured. Run with no arguments for all experiments, or pass
// experiment ids (E1 … E14) to select.
//
// Observability: -stats prints a per-stage timing summary and counters
// to stderr after the run; -trace FILE streams every pipeline span as
// JSON lines.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("hierarchy", flag.ContinueOnError)
	stats := fs.Bool("stats", false, "print span tree, stage summary and metrics to stderr")
	tracePath := fs.String("trace", "", "write spans and metrics as JSON lines to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	finish, err := obs.Setup(obs.Config{Stats: *stats, TracePath: *tracePath}, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hierarchy:", err)
		return 2
	}
	want := map[string]bool{}
	for _, a := range fs.Args() {
		want[strings.ToUpper(a)] = true
	}
	reports := experiments.All()
	exit := 0
	for _, r := range reports {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		fmt.Print(experiments.Render(r))
		fmt.Println()
		if !r.OK {
			exit = 1
		}
	}
	if err := finish(); err != nil {
		fmt.Fprintln(os.Stderr, "hierarchy:", err)
		if exit == 0 {
			exit = 2
		}
	}
	return exit
}

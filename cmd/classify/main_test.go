package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestClassifyStats drives the full pipeline through the CLI entry point
// and checks that -stats reports every major stage with automaton sizes.
func TestClassifyStats(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-stats", "G (p -> F q)"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stdout.String(), "semantic class    : recurrence") {
		t.Errorf("stdout missing classification:\n%s", stdout.String())
	}
	report := stderr.String()
	for _, stage := range []string{"compile.", "dfa.", "omega.", "classify."} {
		if !strings.Contains(report, stage) {
			t.Errorf("-stats report missing stage %q:\n%s", stage, report)
		}
	}
	for _, want := range []string{"states=", "span tree", "stage summary", "metrics"} {
		if !strings.Contains(report, want) {
			t.Errorf("-stats report missing %q:\n%s", want, report)
		}
	}
}

// TestClassifyTraceJSONL checks that -trace writes one valid JSON object
// per line covering spans of the pipeline stages and the final metrics.
func TestClassifyTraceJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-trace", path, "G (p -> F q)"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open trace: %v", err)
	}
	defer f.Close()

	names := map[string]bool{}
	records := map[string]int{}
	var sawFormulaAttr bool
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Bytes()
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("invalid JSON line %q: %v", line, err)
		}
		kind, _ := rec["record"].(string)
		records[kind]++
		name, _ := rec["name"].(string)
		names[name] = true
		if attrs, ok := rec["attrs"].(map[string]any); ok {
			if _, ok := attrs["formula"]; ok {
				sawFormulaAttr = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	if records["span"] == 0 || records["metric"] == 0 {
		t.Fatalf("want span and metric records, got %v", records)
	}
	for _, want := range []string{"compile.formula", "dfa.minimize", "omega.reduce", "classify.automaton"} {
		if !names[want] {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}
	if !sawFormulaAttr {
		t.Error("no span carried a formula attribute")
	}
}

// TestClassifyAutomatonFileError checks that a malformed -automaton file
// is reported with the file name and the offending line.
func TestClassifyAutomatonFileError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.aut")
	content := "alphabet a b\nstates 2\nstart 0\ntrans 0 a 5\ntrans 0 b 0\ntrans 1 a 0\ntrans 1 b 1\npair R=1 P=\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	err := run([]string{"-automaton", path}, &stdout, &stderr)
	if err == nil {
		t.Fatal("want error for malformed automaton file")
	}
	msg := err.Error()
	if !strings.Contains(msg, "bad.aut") {
		t.Errorf("error %q does not name the file", msg)
	}
	if !strings.Contains(msg, "line 4") {
		t.Errorf("error %q does not cite the offending line", msg)
	}
}

// canonicalMetrics is the dashboard contract: the metric names operators
// alert on. A rename here is a breaking change for every scrape config
// and must show up as a test diff, not a silently empty panel.
var canonicalMetrics = []string{
	"engine.classify.calls",
	"engine.compile.calls",
	"engine.cache.hits",
	"engine.cache.misses",
	"engine.cache.evictions",
	"engine.batch.calls",
	"engine.panics.recovered",
	"budget.exceeded",
	"omega.lazy.states_materialized",
	"omega.lazy.early_exits",
	"omega.lazy.max_states",
	"omega.product.states",
	"omega.emptiness.checks",
	"compile.formula.calls",
	"classify.automaton.calls",
	"autkern.scc.runs",
	"mc.verify.calls",
	"mc.refine.rounds",
	"mc.lazy.nodes_materialized",
	"dfa.product.states",
	"compile.past2dfa.calls",
}

// TestCanonicalMetricNamesRegistered guards the names at the registry:
// every canonical metric must exist in the default registry once the
// packages are linked in, whatever values they hold.
func TestCanonicalMetricNamesRegistered(t *testing.T) {
	for _, name := range canonicalMetrics {
		if !obs.Default().Has(name) {
			t.Errorf("metric %q not registered (renamed or deleted?)", name)
		}
	}
}

// TestStatsOutputCarriesEngineCounters is the -stats golden: a normal
// engine-path run must report the engine and compile counter families
// with non-zero values in the metrics section.
func TestStatsOutputCarriesEngineCounters(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-stats", "G (p -> F q)"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	report := stderr.String()
	for _, name := range []string{
		"engine.classify.calls",
		"engine.compile.calls",
		"engine.cache.misses",
		"compile.past2dfa.calls",
		"classify.automaton.calls",
		"autkern.scc.runs",
	} {
		if !strings.Contains(report, name) {
			t.Errorf("-stats output missing counter %q:\n%s", name, report)
		}
	}
}

// TestStatsOutputCarriesBudgetCounter: a budget-capped run errors, but
// the stats epilogue still runs and must name budget.exceeded so the
// operator sees what tripped.
func TestStatsOutputCarriesBudgetCounter(t *testing.T) {
	var stdout, stderr bytes.Buffer
	err := run([]string{"-stats", "-budget", "1",
		"(G F a -> G F b) & (G F c -> G F d) & (G F e -> G F f)"}, &stdout, &stderr)
	if err == nil {
		t.Fatal("want budget-exceeded error")
	}
	if !strings.Contains(stderr.String(), "budget.exceeded") {
		t.Errorf("-stats output missing budget.exceeded after capped run:\n%s", stderr.String())
	}
}

// TestStatsOutputCarriesLazyCounters: a containment query through the
// lazy product path must surface omega.lazy.* in the metrics section.
func TestStatsOutputCarriesLazyCounters(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-stats", "-op", "A", "-regex", "a*b", "-alphabet", "ab"}, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(stderr.String(), "omega.") {
		t.Errorf("-stats output missing omega counters:\n%s", stderr.String())
	}
}

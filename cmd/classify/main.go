// Command classify places a temporal formula in the safety–progress
// hierarchy, reporting all four of the paper's views.
//
// Usage:
//
//	classify [-props p,q,r] "G (p -> F q)"
//	classify -op R -regex '.*b' -alphabet ab
//
// The first form classifies a temporal formula (grammar: X U W F G future
// operators, Y Z S B O H past operators, ! & | -> <-> connectives). The
// second form classifies O(Φ) for one of the linguistic operators
// O ∈ {A, E, R, P} applied to a finitary regular language. A third form,
//
//	classify -automaton m.aut
//
// classifies a deterministic Streett automaton given in the textual
// format of internal/omega.ParseText (alphabet/states/start/trans/pair
// directives).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	temporal "repro"
	"repro/internal/omega"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "classify:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("classify", flag.ContinueOnError)
	props := fs.String("props", "", "comma-separated extra propositions")
	op := fs.String("op", "", "linguistic operator: A, E, R or P (with -regex)")
	regexExpr := fs.String("regex", "", "finitary regular expression for -op")
	alphaStr := fs.String("alphabet", "ab", "letters of the alphabet for -op")
	autFile := fs.String("automaton", "", "file with a Streett automaton in the textual format")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *autFile != "" {
		return classifyAutomatonFile(*autFile)
	}
	if *op != "" {
		return classifyOperator(*op, *regexExpr, *alphaStr)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("need exactly one formula argument")
	}
	return classifyFormula(fs.Arg(0), *props)
}

func classifyFormula(input, extraProps string) error {
	f, err := temporal.ParseFormula(input)
	if err != nil {
		return err
	}
	var props []string
	if extraProps != "" {
		props = strings.Split(extraProps, ",")
	}

	fmt.Printf("formula           : %v\n", f)
	syn, nf, err := temporal.SyntacticClass(f)
	if err != nil {
		return fmt.Errorf("normalize: %w", err)
	}
	fmt.Printf("normal form       : %v\n", nf)
	fmt.Printf("syntactic class   : %v\n", syn)

	aut, err := temporal.CompileFormula(f, propsOrNil(props, f))
	if err != nil {
		return err
	}
	c := temporal.ClassifyAutomaton(aut)
	fmt.Printf("automaton         : %d states, %d Streett pairs\n", aut.NumStates(), aut.NumPairs())
	fmt.Printf("semantic class    : %v\n", c.Lowest())
	fmt.Printf("all classes       : %v\n", c.Classes())
	if c.Obligation {
		fmt.Printf("obligation rank   : %d\n", c.ObligationRank)
	}
	fmt.Printf("reactivity rank   : %d\n", c.ReactivityRank)
	fmt.Printf("topology          : closed=%v open=%v Gδ=%v Fσ=%v dense=%v\n",
		temporal.IsClosed(aut), temporal.IsOpen(aut),
		temporal.IsGdelta(aut), temporal.IsFsigma(aut), temporal.IsDense(aut))
	fmt.Printf("safety-liveness   : liveness=%v\n", temporal.IsLiveness(aut))
	return nil
}

func propsOrNil(props []string, f temporal.Formula) []string {
	if len(props) == 0 {
		return nil
	}
	return props
}

func classifyAutomatonFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	aut, err := omega.ParseText(string(data))
	if err != nil {
		return err
	}
	c := temporal.ClassifyAutomaton(aut)
	fmt.Printf("automaton         : %d states, %d Streett pairs over %v\n",
		aut.NumStates(), aut.NumPairs(), aut.Alphabet())
	fmt.Printf("semantic class    : %v\n", c.Lowest())
	fmt.Printf("all classes       : %v\n", c.Classes())
	if c.Obligation {
		fmt.Printf("obligation rank   : %d\n", c.ObligationRank)
	}
	fmt.Printf("reactivity rank   : %d\n", c.ReactivityRank)
	fmt.Printf("topology          : closed=%v open=%v Gδ=%v Fσ=%v dense=%v\n",
		temporal.IsClosed(aut), temporal.IsOpen(aut),
		temporal.IsGdelta(aut), temporal.IsFsigma(aut), temporal.IsDense(aut))
	fmt.Printf("syntactic shape   : safety=%v guarantee=%v recurrence=%v persistence=%v\n",
		aut.IsSafetyAutomaton(), aut.IsGuaranteeAutomaton(),
		aut.IsRecurrenceAutomaton(), aut.IsPersistenceAutomaton())
	return nil
}

func classifyOperator(op, regexExpr, alphaStr string) error {
	if regexExpr == "" {
		return fmt.Errorf("-op needs -regex")
	}
	alpha, err := temporal.Letters(alphaStr)
	if err != nil {
		return err
	}
	phi, err := temporal.NewProperty(regexExpr, alpha)
	if err != nil {
		return err
	}
	var aut *temporal.Automaton
	switch strings.ToUpper(op) {
	case "A":
		aut = temporal.BuildA(phi)
	case "E":
		aut = temporal.BuildE(phi)
	case "R":
		aut = temporal.BuildR(phi)
	case "P":
		aut = temporal.BuildP(phi)
	default:
		return fmt.Errorf("unknown operator %q (want A, E, R or P)", op)
	}
	c := temporal.ClassifyAutomaton(aut)
	fmt.Printf("property          : %s(%s) over %v\n", strings.ToUpper(op), regexExpr, alpha)
	fmt.Printf("automaton         : %d states, %d Streett pairs\n", aut.NumStates(), aut.NumPairs())
	fmt.Printf("semantic class    : %v\n", c.Lowest())
	fmt.Printf("all classes       : %v\n", c.Classes())
	fmt.Printf("topology          : closed=%v open=%v Gδ=%v Fσ=%v dense=%v\n",
		temporal.IsClosed(aut), temporal.IsOpen(aut),
		temporal.IsGdelta(aut), temporal.IsFsigma(aut), temporal.IsDense(aut))
	return nil
}

// Command classify places a temporal formula in the safety–progress
// hierarchy, reporting all four of the paper's views.
//
// Usage:
//
//	classify [-props p,q,r] "G (p -> F q)"
//	classify -op R -regex '.*b' -alphabet ab
//
// The first form classifies a temporal formula (grammar: X U W F G future
// operators, Y Z S B O H past operators, ! & | -> <-> connectives). The
// second form classifies O(Φ) for one of the linguistic operators
// O ∈ {A, E, R, P} applied to a finitary regular language. A third form,
//
//	classify -automaton m.aut
//
// classifies a deterministic Streett automaton given in the textual
// format of internal/omega.ParseText (alphabet/states/start/trans/pair
// directives).
//
// Observability: -stats prints a span tree, per-stage timing summary and
// counter values to stderr after the run; -trace FILE writes every span
// and metric as JSON lines for offline analysis.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	temporal "repro"
	"repro/internal/obs"
	"repro/internal/omega"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "classify:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("classify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	props := fs.String("props", "", "comma-separated extra propositions")
	op := fs.String("op", "", "linguistic operator: A, E, R or P (with -regex)")
	regexExpr := fs.String("regex", "", "finitary regular expression for -op")
	alphaStr := fs.String("alphabet", "ab", "letters of the alphabet for -op")
	autFile := fs.String("automaton", "", "file with a Streett automaton in the textual format")
	stats := fs.Bool("stats", false, "print span tree, stage summary and metrics to stderr")
	tracePath := fs.String("trace", "", "write spans and metrics as JSON lines to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	finish, err := obs.Setup(*stats, *tracePath, stderr)
	if err != nil {
		return err
	}
	err = dispatch(fs, *autFile, *op, *regexExpr, *alphaStr, *props, stdout)
	if ferr := finish(); err == nil {
		err = ferr
	}
	return err
}

func dispatch(fs *flag.FlagSet, autFile, op, regexExpr, alphaStr, props string, stdout io.Writer) error {
	if autFile != "" {
		return classifyAutomatonFile(autFile, stdout)
	}
	if op != "" {
		return classifyOperator(op, regexExpr, alphaStr, stdout)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("need exactly one formula argument")
	}
	return classifyFormula(fs.Arg(0), props, stdout)
}

func classifyFormula(input, extraProps string, w io.Writer) error {
	f, err := temporal.ParseFormula(input)
	if err != nil {
		return err
	}
	var props []string
	if extraProps != "" {
		props = strings.Split(extraProps, ",")
	}

	fmt.Fprintf(w, "formula           : %v\n", f)
	syn, nf, err := temporal.SyntacticClass(f)
	if err != nil {
		return fmt.Errorf("normalize: %w", err)
	}
	fmt.Fprintf(w, "normal form       : %v\n", nf)
	fmt.Fprintf(w, "syntactic class   : %v\n", syn)

	aut, err := temporal.CompileFormula(f, propsOrNil(props, f))
	if err != nil {
		return err
	}
	c := temporal.ClassifyAutomaton(aut)
	fmt.Fprintf(w, "automaton         : %d states, %d Streett pairs\n", aut.NumStates(), aut.NumPairs())
	fmt.Fprintf(w, "semantic class    : %v\n", c.Lowest())
	fmt.Fprintf(w, "all classes       : %v\n", c.Classes())
	if c.Obligation {
		fmt.Fprintf(w, "obligation rank   : %d\n", c.ObligationRank)
	}
	fmt.Fprintf(w, "reactivity rank   : %d\n", c.ReactivityRank)
	fmt.Fprintf(w, "topology          : closed=%v open=%v Gδ=%v Fσ=%v dense=%v\n",
		temporal.IsClosed(aut), temporal.IsOpen(aut),
		temporal.IsGdelta(aut), temporal.IsFsigma(aut), temporal.IsDense(aut))
	fmt.Fprintf(w, "safety-liveness   : liveness=%v\n", temporal.IsLiveness(aut))
	return nil
}

func propsOrNil(props []string, f temporal.Formula) []string {
	if len(props) == 0 {
		return nil
	}
	return props
}

func classifyAutomatonFile(path string, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	aut, err := omega.ParseText(string(data))
	if err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	c := temporal.ClassifyAutomaton(aut)
	fmt.Fprintf(w, "automaton         : %d states, %d Streett pairs over %v\n",
		aut.NumStates(), aut.NumPairs(), aut.Alphabet())
	fmt.Fprintf(w, "semantic class    : %v\n", c.Lowest())
	fmt.Fprintf(w, "all classes       : %v\n", c.Classes())
	if c.Obligation {
		fmt.Fprintf(w, "obligation rank   : %d\n", c.ObligationRank)
	}
	fmt.Fprintf(w, "reactivity rank   : %d\n", c.ReactivityRank)
	fmt.Fprintf(w, "topology          : closed=%v open=%v Gδ=%v Fσ=%v dense=%v\n",
		temporal.IsClosed(aut), temporal.IsOpen(aut),
		temporal.IsGdelta(aut), temporal.IsFsigma(aut), temporal.IsDense(aut))
	fmt.Fprintf(w, "syntactic shape   : safety=%v guarantee=%v recurrence=%v persistence=%v\n",
		aut.IsSafetyAutomaton(), aut.IsGuaranteeAutomaton(),
		aut.IsRecurrenceAutomaton(), aut.IsPersistenceAutomaton())
	return nil
}

func classifyOperator(op, regexExpr, alphaStr string, w io.Writer) error {
	if regexExpr == "" {
		return fmt.Errorf("-op needs -regex")
	}
	alpha, err := temporal.Letters(alphaStr)
	if err != nil {
		return err
	}
	phi, err := temporal.NewProperty(regexExpr, alpha)
	if err != nil {
		return err
	}
	var aut *temporal.Automaton
	switch strings.ToUpper(op) {
	case "A":
		aut = temporal.BuildA(phi)
	case "E":
		aut = temporal.BuildE(phi)
	case "R":
		aut = temporal.BuildR(phi)
	case "P":
		aut = temporal.BuildP(phi)
	default:
		return fmt.Errorf("unknown operator %q (want A, E, R or P)", op)
	}
	c := temporal.ClassifyAutomaton(aut)
	fmt.Fprintf(w, "property          : %s(%s) over %v\n", strings.ToUpper(op), regexExpr, alpha)
	fmt.Fprintf(w, "automaton         : %d states, %d Streett pairs\n", aut.NumStates(), aut.NumPairs())
	fmt.Fprintf(w, "semantic class    : %v\n", c.Lowest())
	fmt.Fprintf(w, "all classes       : %v\n", c.Classes())
	fmt.Fprintf(w, "topology          : closed=%v open=%v Gδ=%v Fσ=%v dense=%v\n",
		temporal.IsClosed(aut), temporal.IsOpen(aut),
		temporal.IsGdelta(aut), temporal.IsFsigma(aut), temporal.IsDense(aut))
	return nil
}

// Command classify places a temporal formula in the safety–progress
// hierarchy, reporting all four of the paper's views.
//
// Usage:
//
//	classify [-props p,q,r] "G (p -> F q)"
//	classify -op R -regex '.*b' -alphabet ab
//
// The first form classifies a temporal formula (grammar: X U W F G future
// operators, Y Z S B O H past operators, ! & | -> <-> connectives). The
// second form classifies O(Φ) for one of the linguistic operators
// O ∈ {A, E, R, P} applied to a finitary regular language. A third form,
//
//	classify -automaton m.aut
//
// classifies a deterministic Streett automaton given in the textual
// format of internal/omega.ParseText (alphabet/states/start/trans/pair
// directives).
//
// Observability: -stats prints a span tree, per-stage timing summary and
// counter values to stderr after the run; -trace FILE writes every span
// and metric as JSON lines for offline analysis.
//
// Batch mode classifies many formulas at once on a worker pool:
//
//	classify -batch spec.txt -jobs 4
//
// with one formula per line ('#' comments); structurally identical
// formulas and shared normal-form clauses are deduplicated by the
// engine's memo cache.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	temporal "repro"
	"repro/internal/cli"
	"repro/internal/omega"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "classify:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) (err error) {
	// Malformed inputs must produce a one-line diagnostic and a non-zero
	// exit, never a stack trace.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("internal error: %v", r)
		}
	}()
	fs := flag.NewFlagSet("classify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	props := fs.String("props", "", "comma-separated extra propositions")
	op := fs.String("op", "", "linguistic operator: A, E, R or P (with -regex)")
	regexExpr := fs.String("regex", "", "finitary regular expression for -op")
	alphaStr := fs.String("alphabet", "ab", "letters of the alphabet for -op")
	autFile := fs.String("automaton", "", "file with a Streett automaton in the textual format")
	batchFile := fs.String("batch", "", "file with one formula per line ('#' comments): classify all at once")
	common := cli.Register(fs, cli.FlagAll)
	if err := fs.Parse(args); err != nil {
		return err
	}

	finish, err := common.SetupObs(stderr)
	if err != nil {
		return err
	}
	ctx, cancel := common.Context(context.Background())
	defer cancel()
	err = dispatch(ctx, fs, *autFile, *batchFile, *op, *regexExpr, *alphaStr, *props, common, stdout, stderr)
	if ferr := finish(); err == nil {
		err = ferr
	}
	return err
}

func dispatch(ctx context.Context, fs *flag.FlagSet, autFile, batchFile, op, regexExpr, alphaStr, props string, common *cli.Common, stdout, stderr io.Writer) (err error) {
	// One engine per invocation: a CLI run is one-shot, so the memo cache
	// only serves within-run sharing (batch dedup, repeated subterms) —
	// but with -store, verdicts additionally warm-start from and persist
	// to the verdict log, so repeated invocations share work on disk.
	eng := temporal.NewEngine(common.EngineOptions()...)
	eng.RegisterStatsGauges(nil)
	defer func() {
		if ferr := common.FinishEngine(eng, stderr); err == nil {
			err = ferr
		}
	}()
	if batchFile != "" {
		return classifyBatch(ctx, batchFile, props, eng, stdout)
	}
	if autFile != "" {
		return classifyAutomatonFile(ctx, autFile, eng, stdout)
	}
	if op != "" {
		return classifyOperator(ctx, op, regexExpr, alphaStr, eng, stdout)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("need exactly one formula argument")
	}
	return classifyFormula(ctx, fs.Arg(0), props, eng, stdout)
}

// readFormulaLines reads one formula per line, skipping blanks and '#'
// comments.
func readFormulaLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var inputs []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		inputs = append(inputs, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return inputs, nil
}

func classifyBatch(ctx context.Context, path, extraProps string, eng *temporal.Engine, w io.Writer) error {
	inputs, err := readFormulaLines(path)
	if err != nil {
		return err
	}
	if len(inputs) == 0 {
		return fmt.Errorf("no formulas in %s (empty input file)", path)
	}
	var props []string
	if extraProps != "" {
		props = strings.Split(extraProps, ",")
	}
	reqs := make([]temporal.BatchRequest, len(inputs))
	for i, in := range inputs {
		f, err := temporal.ParseFormula(in)
		if err != nil {
			return fmt.Errorf("parse %q: %w", in, err)
		}
		reqs[i] = temporal.BatchRequest{Formula: f, Props: props}
	}
	results := eng.Batch(ctx, reqs)
	fmt.Fprintf(w, "%-36s %-12s %-7s %s\n", "formula", "class", "states", "all classes")
	for i, r := range results {
		if r.Err != nil {
			return fmt.Errorf("classify %q: %w", inputs[i], r.Err)
		}
		fmt.Fprintf(w, "%-36s %-12v %-7d %v\n",
			inputs[i], r.Classification.Lowest(), r.Automaton.NumStates(), r.Classification.Classes())
	}
	st := eng.CacheStats()
	fmt.Fprintf(w, "\n%d formulas, %d unique automata; cache: %d hits, %d misses\n",
		len(inputs), countDistinct(results), st.Hits, st.Misses)
	return nil
}

func countDistinct(results []temporal.BatchResult) int {
	seen := map[*temporal.Automaton]bool{}
	for _, r := range results {
		if r.Automaton != nil {
			seen[r.Automaton] = true
		}
	}
	return len(seen)
}

func classifyFormula(ctx context.Context, input, extraProps string, eng *temporal.Engine, w io.Writer) error {
	f, err := temporal.ParseFormula(input)
	if err != nil {
		return err
	}
	var props []string
	if extraProps != "" {
		props = strings.Split(extraProps, ",")
	}

	fmt.Fprintf(w, "formula           : %v\n", f)
	syn, nf, err := temporal.SyntacticClass(f)
	if err != nil {
		return fmt.Errorf("normalize: %w", err)
	}
	fmt.Fprintf(w, "normal form       : %v\n", nf)
	fmt.Fprintf(w, "syntactic class   : %v\n", syn)

	aut, err := eng.CompileFormula(ctx, f, propsOrNil(props, f))
	if err != nil {
		return err
	}
	c, err := eng.ClassifyAutomaton(ctx, aut)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "automaton         : %d states, %d Streett pairs\n", aut.NumStates(), aut.NumPairs())
	fmt.Fprintf(w, "semantic class    : %v\n", c.Lowest())
	fmt.Fprintf(w, "all classes       : %v\n", c.Classes())
	if c.Obligation {
		fmt.Fprintf(w, "obligation rank   : %d\n", c.ObligationRank)
	}
	fmt.Fprintf(w, "reactivity rank   : %d\n", c.ReactivityRank)
	fmt.Fprintf(w, "topology          : closed=%v open=%v Gδ=%v Fσ=%v dense=%v\n",
		temporal.IsClosed(aut), temporal.IsOpen(aut),
		temporal.IsGdelta(aut), temporal.IsFsigma(aut), temporal.IsDense(aut))
	fmt.Fprintf(w, "safety-liveness   : liveness=%v\n", temporal.IsLiveness(aut))
	return nil
}

func propsOrNil(props []string, f temporal.Formula) []string {
	if len(props) == 0 {
		return nil
	}
	return props
}

func classifyAutomatonFile(ctx context.Context, path string, eng *temporal.Engine, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if strings.TrimSpace(string(data)) == "" {
		return fmt.Errorf("automaton file %s is empty", path)
	}
	aut, err := omega.ParseText(string(data))
	if err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	c, err := eng.ClassifyAutomaton(ctx, aut)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "automaton         : %d states, %d Streett pairs over %v\n",
		aut.NumStates(), aut.NumPairs(), aut.Alphabet())
	fmt.Fprintf(w, "semantic class    : %v\n", c.Lowest())
	fmt.Fprintf(w, "all classes       : %v\n", c.Classes())
	if c.Obligation {
		fmt.Fprintf(w, "obligation rank   : %d\n", c.ObligationRank)
	}
	fmt.Fprintf(w, "reactivity rank   : %d\n", c.ReactivityRank)
	fmt.Fprintf(w, "topology          : closed=%v open=%v Gδ=%v Fσ=%v dense=%v\n",
		temporal.IsClosed(aut), temporal.IsOpen(aut),
		temporal.IsGdelta(aut), temporal.IsFsigma(aut), temporal.IsDense(aut))
	fmt.Fprintf(w, "syntactic shape   : safety=%v guarantee=%v recurrence=%v persistence=%v\n",
		aut.IsSafetyAutomaton(), aut.IsGuaranteeAutomaton(),
		aut.IsRecurrenceAutomaton(), aut.IsPersistenceAutomaton())
	return nil
}

func classifyOperator(ctx context.Context, op, regexExpr, alphaStr string, eng *temporal.Engine, w io.Writer) error {
	if regexExpr == "" {
		return fmt.Errorf("-op needs -regex")
	}
	alpha, err := temporal.Letters(alphaStr)
	if err != nil {
		return err
	}
	phi, err := temporal.NewProperty(regexExpr, alpha)
	if err != nil {
		return err
	}
	var aut *temporal.Automaton
	switch strings.ToUpper(op) {
	case "A":
		aut = temporal.BuildA(phi)
	case "E":
		aut = temporal.BuildE(phi)
	case "R":
		aut = temporal.BuildR(phi)
	case "P":
		aut = temporal.BuildP(phi)
	default:
		return fmt.Errorf("unknown operator %q (want A, E, R or P)", op)
	}
	c, err := eng.ClassifyAutomaton(ctx, aut)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "property          : %s(%s) over %v\n", strings.ToUpper(op), regexExpr, alpha)
	fmt.Fprintf(w, "automaton         : %d states, %d Streett pairs\n", aut.NumStates(), aut.NumPairs())
	fmt.Fprintf(w, "semantic class    : %v\n", c.Lowest())
	fmt.Fprintf(w, "all classes       : %v\n", c.Classes())
	fmt.Fprintf(w, "topology          : closed=%v open=%v Gδ=%v Fσ=%v dense=%v\n",
		temporal.IsClosed(aut), temporal.IsOpen(aut),
		temporal.IsGdelta(aut), temporal.IsFsigma(aut), temporal.IsDense(aut))
	return nil
}

// Command speccheck implements the paper's methodological motivation
// (§1): property-list specifications risk underspecification, and the
// hierarchy gives the specifier a checklist. Given a list of requirement
// formulas, speccheck classifies each one, summarizes the coverage of
// the hierarchy, and warns when a specification contains no liveness
// (non-safety) requirement — the mutual-exclusion trap.
//
// Usage:
//
//	speccheck "G !(c1 & c2)" "G (w1 -> F c1)"
//	speccheck -f spec.txt        # one formula per line, # comments
//	speccheck -f spec.txt -jobs 4   # classify the list on a worker pool
//
// The requirement list is classified as one engine batch: structurally
// identical requirements are deduplicated and distinct ones classified
// concurrently (bounded by -jobs; 0 means the number of CPUs).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	temporal "repro"
	"repro/internal/obs"
	"repro/internal/obshttp"
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "speccheck:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(args []string) (code int, err error) {
	// Malformed inputs must produce a one-line diagnostic and a non-zero
	// exit, never a stack trace.
	defer func() {
		if r := recover(); r != nil {
			code, err = 0, fmt.Errorf("internal error: %v", r)
		}
	}()
	fs := flag.NewFlagSet("speccheck", flag.ContinueOnError)
	file := fs.String("f", "", "file with one formula per line ('#' comments)")
	jobs := fs.Int("jobs", 0, "engine worker-pool bound (0 = number of CPUs)")
	budgetStates := fs.Int64("budget", 0, "state budget per request: abort any request that materializes more automaton states (0 = unlimited)")
	timeout := fs.Duration("timeout", 0, "wall-clock deadline for the whole run, e.g. 30s (0 = none)")
	stats := fs.Bool("stats", false, "print span tree, stage summary and metrics to stderr")
	tracePath := fs.String("trace", "", "write spans and metrics as JSON lines to this file")
	slowOp := fs.Duration("slow-op", 0, "log spans at or above this duration as JSONL to stderr (0 = off)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /healthz and /debug/pprof on this address for the run's duration")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	finish, err := obs.Setup(obs.Config{
		Stats:     *stats,
		TracePath: *tracePath,
		SlowOp:    *slowOp,
		SlowOpW:   os.Stderr,
	}, os.Stderr)
	if err != nil {
		return 0, err
	}
	if *metricsAddr != "" {
		addr, err := obshttp.Listen(*metricsAddr, nil)
		if err != nil {
			return 0, err
		}
		fmt.Fprintf(os.Stderr, "metrics: http://%s/metrics\n", addr)
	}
	ctx := context.Background()
	if obs.Enabled() {
		// One CLI invocation is one trace: mint the id up front so every
		// engine request of the run shares it in the JSONL records.
		ctx, _ = obs.EnsureTraceID(ctx)
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	code, err = check(ctx, fs, *file, *jobs, *budgetStates)
	if ferr := finish(); err == nil {
		err = ferr
	}
	return code, err
}

func check(ctx context.Context, fs *flag.FlagSet, file string, jobs int, budgetStates int64) (int, error) {
	var inputs []string
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			inputs = append(inputs, line)
		}
		if err := sc.Err(); err != nil {
			return 0, err
		}
		if len(inputs) == 0 && fs.NArg() == 0 {
			return 0, fmt.Errorf("no formulas given (input file %s is empty)", file)
		}
	}
	inputs = append(inputs, fs.Args()...)
	if len(inputs) == 0 {
		return 0, fmt.Errorf("no formulas given")
	}

	reqs := make([]temporal.BatchRequest, len(inputs))
	for i, in := range inputs {
		f, err := temporal.ParseFormula(in)
		if err != nil {
			return 0, fmt.Errorf("parse %q: %w", in, err)
		}
		reqs[i] = temporal.BatchRequest{Formula: f}
	}
	var opts []temporal.EngineOption
	if jobs > 0 {
		opts = append(opts, temporal.WithParallelism(jobs))
	}
	if budgetStates > 0 {
		// Same derivation as cmd/classify: the iterative analyses do a
		// bounded amount of work per materialized state, so a 64x step
		// budget bounds runaway refinement without tripping on legitimate
		// inputs.
		opts = append(opts, temporal.WithStateBudget(budgetStates),
			temporal.WithStepBudget(64*budgetStates))
	}
	eng := temporal.NewEngine(opts...)
	results := eng.Batch(ctx, reqs)

	counts := map[temporal.Class]int{}
	hasLiveness := false
	fmt.Printf("%-36s %-12s %-9s %s\n", "requirement", "class", "liveness", "reading")
	for i, r := range results {
		if r.Err != nil {
			return 0, fmt.Errorf("classify %q: %w", inputs[i], r.Err)
		}
		c := r.Classification
		live := temporal.IsLiveness(r.Automaton)
		hasLiveness = hasLiveness || live
		counts[c.Lowest()]++
		fmt.Printf("%-36s %-12v %-9v %s\n", inputs[i], c.Lowest(), live, reading(c.Lowest()))
	}

	fmt.Println()
	fmt.Println("hierarchy coverage:")
	for _, cl := range []temporal.Class{
		temporal.Safety, temporal.Guarantee, temporal.Obligation,
		temporal.Recurrence, temporal.Persistence, temporal.Reactivity,
	} {
		marker := " "
		if counts[cl] > 0 {
			marker = "x"
		}
		fmt.Printf("  [%s] %-12v %d requirement(s)\n", marker, cl, counts[cl])
	}

	fmt.Println()
	if !hasLiveness {
		fmt.Println("WARNING: every requirement is a safety property. A system that")
		fmt.Println("does nothing satisfies this specification (the paper's mutual")
		fmt.Println("exclusion trap). Consider adding a guarantee / response /")
		fmt.Println("reactivity requirement for each obligation the system owes its")
		fmt.Println("environment.")
		return 2, nil
	}
	fmt.Println("specification contains liveness requirements — the do-nothing")
	fmt.Println("implementation is excluded.")
	return 0, nil
}

func reading(c temporal.Class) string {
	switch c {
	case temporal.Safety:
		return "something bad never happens"
	case temporal.Guarantee:
		return "something good happens at least once"
	case temporal.Obligation:
		return "conditional one-shot promise"
	case temporal.Recurrence:
		return "something good happens infinitely often"
	case temporal.Persistence:
		return "eventually the system stabilizes"
	case temporal.Reactivity:
		return "infinitely many stimuli get infinitely many responses"
	default:
		return ""
	}
}

// Command speccheck implements the paper's methodological motivation
// (§1): property-list specifications risk underspecification, and the
// hierarchy gives the specifier a checklist. Given a list of requirement
// formulas, speccheck classifies each one, summarizes the coverage of
// the hierarchy, and warns when a specification contains no liveness
// (non-safety) requirement — the mutual-exclusion trap.
//
// Usage:
//
//	speccheck "G !(c1 & c2)" "G (w1 -> F c1)"
//	speccheck -f spec.txt        # one formula per line, # comments
//	speccheck -f spec.txt -jobs 4   # classify the list on a worker pool
//
// The requirement list is classified as one engine batch: structurally
// identical requirements are deduplicated and distinct ones classified
// concurrently (bounded by -jobs; 0 means the number of CPUs).
//
// With -explain, speccheck also reports the query-planner view of each
// requirement: the plan tier its compiled automaton lands in, the
// decision procedure that tier runs, its asymptotic cost, and why the
// planner considers the cheaper procedure sound. The footer prints the
// full tier table (class -> procedure -> complexity) for reference.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	temporal "repro"
	"repro/internal/cli"
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "speccheck:", err)
		os.Exit(1)
	}
	os.Exit(code)
}

func run(args []string) (code int, err error) {
	// Malformed inputs must produce a one-line diagnostic and a non-zero
	// exit, never a stack trace.
	defer func() {
		if r := recover(); r != nil {
			code, err = 0, fmt.Errorf("internal error: %v", r)
		}
	}()
	fs := flag.NewFlagSet("speccheck", flag.ContinueOnError)
	file := fs.String("f", "", "file with one formula per line ('#' comments)")
	explain := fs.Bool("explain", false, "report the planner tier, procedure and rationale per requirement")
	common := cli.Register(fs, cli.FlagAll)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	finish, err := common.SetupObs(os.Stderr)
	if err != nil {
		return 0, err
	}
	ctx, cancel := common.Context(context.Background())
	defer cancel()
	code, err = check(ctx, fs, *file, *explain, common, os.Stderr)
	if ferr := finish(); err == nil {
		err = ferr
	}
	return code, err
}

func check(ctx context.Context, fs *flag.FlagSet, file string, explain bool, common *cli.Common, stderr io.Writer) (code int, err error) {
	var inputs []string
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return 0, err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			inputs = append(inputs, line)
		}
		if err := sc.Err(); err != nil {
			return 0, err
		}
		if len(inputs) == 0 && fs.NArg() == 0 {
			return 0, fmt.Errorf("no formulas given (input file %s is empty)", file)
		}
	}
	inputs = append(inputs, fs.Args()...)
	if len(inputs) == 0 {
		return 0, fmt.Errorf("no formulas given")
	}

	reqs := make([]temporal.BatchRequest, len(inputs))
	for i, in := range inputs {
		f, err := temporal.ParseFormula(in)
		if err != nil {
			return 0, fmt.Errorf("parse %q: %w", in, err)
		}
		reqs[i] = temporal.BatchRequest{Formula: f}
	}
	eng := temporal.NewEngine(common.EngineOptions()...)
	eng.RegisterStatsGauges(nil)
	defer func() {
		if ferr := common.FinishEngine(eng, stderr); err == nil {
			err = ferr
		}
	}()
	results := eng.Batch(ctx, reqs)

	counts := map[temporal.Class]int{}
	hasLiveness := false
	fmt.Printf("%-36s %-12s %-9s %s\n", "requirement", "class", "liveness", "reading")
	for i, r := range results {
		if r.Err != nil {
			return 0, fmt.Errorf("classify %q: %w", inputs[i], r.Err)
		}
		c := r.Classification
		live := temporal.IsLiveness(r.Automaton)
		hasLiveness = hasLiveness || live
		counts[c.Lowest()]++
		fmt.Printf("%-36s %-12v %-9v %s\n", inputs[i], c.Lowest(), live, reading(c.Lowest()))
	}

	fmt.Println()
	fmt.Println("hierarchy coverage:")
	for _, cl := range []temporal.Class{
		temporal.Safety, temporal.Guarantee, temporal.Obligation,
		temporal.Recurrence, temporal.Persistence, temporal.Reactivity,
	} {
		marker := " "
		if counts[cl] > 0 {
			marker = "x"
		}
		fmt.Printf("  [%s] %-12v %d requirement(s)\n", marker, cl, counts[cl])
	}

	if explain {
		fmt.Println()
		if err := explainPlans(ctx, eng, inputs, results); err != nil {
			return 0, err
		}
	}

	fmt.Println()
	if !hasLiveness {
		fmt.Println("WARNING: every requirement is a safety property. A system that")
		fmt.Println("does nothing satisfies this specification (the paper's mutual")
		fmt.Println("exclusion trap). Consider adding a guarantee / response /")
		fmt.Println("reactivity requirement for each obligation the system owes its")
		fmt.Println("environment.")
		return 2, nil
	}
	fmt.Println("specification contains liveness requirements — the do-nothing")
	fmt.Println("implementation is excluded.")
	return 0, nil
}

// explainPlans prints the query-planner view: for each requirement,
// the tier its compiled automaton lands in (from the semantic probe,
// which can beat the syntactic class — e.g. a syntactically reactivity
// formula whose automaton is semantically safe), the procedure that
// tier runs, and the planner's rationale. The syntactic hint
// (PlanOfClass of the classification) is shown when it differs from
// the probe-based decision.
func explainPlans(ctx context.Context, eng *temporal.Engine, inputs []string, results []temporal.BatchResult) error {
	fmt.Println("query plan (-explain):")
	fmt.Printf("  %-36s %-12s %s\n", "requirement", "tier", "procedure — why cheaper")
	for i, r := range results {
		_, dec, err := eng.PlanAutomaton(ctx, r.Automaton)
		if err != nil {
			return fmt.Errorf("plan %q: %w", inputs[i], err)
		}
		fmt.Printf("  %-36s %-12s %s\n", inputs[i], dec.Tier, dec.Tier.Procedure())
		fmt.Printf("  %-36s %-12s %s\n", "", "", "cost "+dec.Tier.CostNote()+"; "+dec.Reason)
		if hint := temporal.PlanOfClass(r.Classification.Lowest()); hint.Tier != dec.Tier {
			fmt.Printf("  %-36s %-12s syntactic class alone would plan %s\n", "", "", hint.Tier)
		}
	}
	fmt.Println()
	fmt.Println("tier table (class -> procedure -> complexity):")
	for _, t := range []temporal.PlanTier{
		temporal.TierSafety, temporal.TierGuarantee, temporal.TierObligation,
		temporal.TierRecurrence, temporal.TierPersistence, temporal.TierStreett,
	} {
		fmt.Printf("  %-12s %-62s %s\n", t, t.Procedure(), t.CostNote())
	}
	return nil
}

func reading(c temporal.Class) string {
	switch c {
	case temporal.Safety:
		return "something bad never happens"
	case temporal.Guarantee:
		return "something good happens at least once"
	case temporal.Obligation:
		return "conditional one-shot promise"
	case temporal.Recurrence:
		return "something good happens infinitely often"
	case temporal.Persistence:
		return "eventually the system stabilizes"
	case temporal.Reactivity:
		return "infinitely many stimuli get infinitely many responses"
	default:
		return ""
	}
}

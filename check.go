package temporal

import (
	"context"

	"repro/internal/engine"
	"repro/internal/plan"
)

// The unified query API (PR 7). Check runs containment, equivalence,
// emptiness and model-checking queries through the engine's
// hierarchy-aware planner: operands are probed for their class, a
// class-specialized decision procedure answers when one is sound, and
// the general lazy Streett path remains the always-correct fallback.
// The Verdict reports the answer together with its provenance — plan
// tier, reason, cost counters, cache/fallback flags.
type (
	// CheckRequest is a planner-backed query; see engine.CheckRequest.
	CheckRequest = engine.CheckRequest
	// CheckKind selects the decision problem of a CheckRequest.
	CheckKind = engine.CheckKind
	// Verdict is a Check result with plan provenance.
	Verdict = engine.Verdict
	// PlanTier identifies the decision procedure that answered a query.
	PlanTier = plan.Tier
	// PlanProbe is the planner's class evidence about one automaton.
	PlanProbe = plan.Probe
	// PlanDecision is a chosen tier plus the reason it is sound.
	PlanDecision = plan.Decision
	// PlanCost counts the work a specialized procedure did.
	PlanCost = plan.Cost
)

// The query kinds.
const (
	CheckContains   = engine.CheckContains
	CheckEquivalent = engine.CheckEquivalent
	CheckEmptiness  = engine.CheckEmptiness
	CheckVerify     = engine.CheckVerify
)

// The plan tiers, cheapest-first below the general path.
const (
	TierStreett     = plan.TierStreett
	TierSafety      = plan.TierSafety
	TierGuarantee   = plan.TierGuarantee
	TierObligation  = plan.TierObligation
	TierRecurrence  = plan.TierRecurrence
	TierPersistence = plan.TierPersistence
)

// Check runs one planned query on the default engine. It is the
// convenience form of Engine.Check; use CheckCtx for cancellation.
func Check(req CheckRequest) (Verdict, error) {
	return defaultEngine.Check(context.Background(), req)
}

// CheckCtx is Check with cooperative cancellation and budgeting.
func CheckCtx(ctx context.Context, req CheckRequest) (Verdict, error) {
	return defaultEngine.Check(ctx, req)
}

// PlanAutomaton probes the automaton on the default engine and reports
// which tier its queries land in and why — the library form of
// speccheck -explain. The probe is memoized per structural key.
func PlanAutomaton(a *Automaton) (PlanProbe, PlanDecision, error) {
	return defaultEngine.PlanAutomaton(context.Background(), a)
}

// PlanAutomatonCtx is PlanAutomaton with cooperative cancellation.
func PlanAutomatonCtx(ctx context.Context, a *Automaton) (PlanProbe, PlanDecision, error) {
	return defaultEngine.PlanAutomaton(ctx, a)
}

// PlanOfClass maps a syntactic hierarchy class to the tier a compiled
// formula of that class is guaranteed to land in (Figure 1).
func PlanOfClass(c Class) PlanDecision { return plan.DecideClass(c) }

// VerifyCtx is Verify with cooperative cancellation: model checking
// routes through the default engine's planner (invariant fast path for
// □χ, fair-lasso search otherwise).
func VerifyCtx(ctx context.Context, sys *System, f Formula) (Result, error) {
	return defaultEngine.Verify(ctx, sys, f)
}

package temporal

import (
	"context"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ltl"
	"repro/internal/omega"
	"repro/internal/store"
)

// Engine is the concurrent, memoizing execution layer for classification
// and model checking. It runs the independent per-class checks of §5.1
// and the per-clause sub-automaton constructions of a compilation on a
// bounded worker pool, and memoizes results under structural keys in a
// size-bounded LRU cache, so repeated and structurally identical
// properties are answered without recomputation.
//
// Construct one with NewEngine and reuse it — the cache only pays off
// across calls. The package-level free functions (Classify,
// ClassifyAutomaton, Contains, …) are convenience forms that route
// through a shared default engine.
type Engine = engine.Engine

// EngineOption configures an Engine at construction.
type EngineOption = engine.Option

// EngineObserver receives engine events ("cache.hit", "cache.miss",
// "batch.unique"); see WithObserver.
type EngineObserver = engine.Observer

// CacheStats is a snapshot of an engine's memo-cache traffic.
type CacheStats = engine.CacheStats

// BatchRequest is one Engine.Batch work item: exactly one of Formula or
// Automaton must be set; Props qualifies a formula request as in
// CompileFormula.
type BatchRequest = engine.Request

// BatchResult is the outcome of one Batch item, positionally matching
// the request slice.
type BatchResult = engine.Result

// NewEngine builds an Engine. By default the worker pool is bounded by
// runtime.GOMAXPROCS(0) and the memo cache holds engine.DefaultCacheSize
// entries; override with WithParallelism, WithCacheSize, WithObserver.
func NewEngine(opts ...EngineOption) *Engine { return engine.New(opts...) }

// WithParallelism bounds the engine's worker pool to n concurrent tasks
// (n < 1 means fully sequential).
func WithParallelism(n int) EngineOption { return engine.WithParallelism(n) }

// WithCacheSize bounds the engine's memo cache to n entries; n <= 0
// disables caching.
func WithCacheSize(n int) EngineOption { return engine.WithCacheSize(n) }

// WithObserver registers a sink for engine events. Observers must be
// safe for concurrent use.
func WithObserver(o EngineObserver) EngineOption { return engine.WithObserver(o) }

// WithStateBudget caps the number of automaton states any single engine
// request may materialize across all its constructions (subset
// construction, products, canonicalization merges). A request exceeding
// the cap fails with ErrBudgetExceeded instead of exhausting memory;
// n <= 0 means unlimited (the default).
func WithStateBudget(n int64) EngineOption { return engine.WithStateBudget(n) }

// WithStepBudget caps the abstract work steps (partition refinements,
// SCC passes, emptiness refinements) any single engine request may
// spend; n <= 0 means unlimited (the default). Use context.WithTimeout
// for wall-clock deadlines.
func WithStepBudget(n int64) EngineOption { return engine.WithStepBudget(n) }

// WithPersistentStore adds a crash-safe, disk-backed verdict tier behind
// the memo cache: terminal classification and planned verdicts persist
// to the append-only log at path, and a fresh process re-serves them
// from disk (warm start; Verdict.Stored marks such answers). Corruption
// or I/O trouble self-disables the store while the engine degrades to
// in-memory operation — a failing disk never fails a query. Call
// Engine.Close before exit to flush write-behind verdicts; StoreStats
// reports the tier's health and traffic.
func WithPersistentStore(path string) EngineOption { return engine.WithPersistentStore(path) }

// StoreStats is a snapshot of an engine's persistent verdict store:
// circuit state (Enabled/Reason), resident records and traffic counters.
type StoreStats = store.Stats

// Typed sentinel errors, matchable with errors.Is (and errors.As for
// *ParseError).
var (
	// ErrCanceled is reported by the context-taking entry points when
	// the operation stopped because its context was canceled; the
	// context's own error is wrapped alongside.
	ErrCanceled = engine.ErrCanceled
	// ErrNotOmegaDeterministic is reported when an automaton definition
	// is not complete deterministic (missing, duplicate or out-of-range
	// transitions).
	ErrNotOmegaDeterministic = omega.ErrNotOmegaDeterministic
	// ErrNotInClass is reported by the canonicalizers when the property
	// lies outside the requested class.
	ErrNotInClass = omega.ErrNotInClass
	// ErrNotNormalizable is reported for formulas outside the
	// normalizable fragment of §4.
	ErrNotNormalizable = core.ErrNotNormalizable
	// ErrBudgetExceeded is reported when a request exceeds a configured
	// state or step budget (WithStateBudget/WithStepBudget); the concrete
	// error details which resource ran out.
	ErrBudgetExceeded = budget.ErrBudgetExceeded
)

// InternalError is reported when a panic escaped from inside an engine
// operation; the engine converts every panic at its boundary, so one
// poisoned request cannot kill the process. Match with errors.As.
type InternalError = engine.InternalError

// ParseError is the typed error returned by ParseFormula; it carries the
// input and the byte offset of the offending token.
type ParseError = ltl.ParseError

// defaultEngine backs the package-level convenience functions. It is
// constructed once with the default options; programs wanting their own
// parallelism/cache bounds or observers should construct an Engine with
// NewEngine and call its methods.
var defaultEngine = engine.New()

// DefaultEngine returns the shared engine behind the package-level
// convenience functions (useful to inspect its CacheStats).
func DefaultEngine() *Engine { return defaultEngine }

// ClassifyCtx is Classify with cooperative cancellation: classification
// aborts promptly with ErrCanceled when ctx is canceled.
func ClassifyCtx(ctx context.Context, f Formula) (Classification, error) {
	return defaultEngine.ClassifyFormula(ctx, f, nil)
}

// ClassifyAutomatonCtx is ClassifyAutomaton with cooperative
// cancellation and an error result.
func ClassifyAutomatonCtx(ctx context.Context, a *Automaton) (Classification, error) {
	return defaultEngine.ClassifyAutomaton(ctx, a)
}

// CompileFormulaCtx is CompileFormula with cooperative cancellation.
func CompileFormulaCtx(ctx context.Context, f Formula, props []string) (*Automaton, error) {
	return defaultEngine.CompileFormula(ctx, f, props)
}

// ContainsCtx is Contains with cooperative cancellation.
func ContainsCtx(ctx context.Context, a, b *Automaton) (bool, Word, error) {
	return defaultEngine.Contains(ctx, a, b)
}

// EquivalentCtx is Equivalent with cooperative cancellation.
func EquivalentCtx(ctx context.Context, a, b *Automaton) (bool, Word, error) {
	return defaultEngine.Equivalent(ctx, a, b)
}

// ClassifyBatch classifies many formulas/automata at once on the default
// engine: structurally identical requests are deduplicated and distinct
// ones run concurrently. Results match the request slice positionally.
func ClassifyBatch(ctx context.Context, reqs []BatchRequest) []BatchResult {
	return defaultEngine.Batch(ctx, reqs)
}

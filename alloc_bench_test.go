package temporal_test

// Allocation benchmarks for the product/containment hot path. The
// unified graph kernel (internal/autkern) interns product states through
// packed uint64 pair keys instead of struct-keyed maps and shares cached
// reachability/SCC analyses across derived automata, so these paths
// should allocate markedly less than a naive per-call construction.
// scripts/bench.sh runs them with -benchmem and cmd/benchjson gates
// allocs/op regressions against the previous snapshot.

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/omega"
)

// BenchmarkAllocProduct: eager pairwise product of two counter automata
// (13·17 reachable product states) — the pair-interner hot path.
func BenchmarkAllocProduct(b *testing.B) {
	x, y := gen.NestedCounters(lazyBenchAB, 13, 17)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := x.Intersect(y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocContainment: a holds-verdict containment over the same
// family — product construction plus emptiness (SCC) over the product,
// exercising the kernel's cached analyses.
func BenchmarkAllocContainment(b *testing.B) {
	x, y := gen.NestedCounters(lazyBenchAB, 13, 17)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, _, err := x.Contains(y)
		if err != nil || !ok {
			b.Fatalf("verdict %v err %v", ok, err)
		}
	}
}

// BenchmarkAllocIntersectEmptiness: 3-way intersection emptiness on the
// diagonal family — repeated SCC passes over one shared kernel, where
// the cached SCC decomposition and reverse adjacency pay off.
func BenchmarkAllocIntersectEmptiness(b *testing.B) {
	autos := gen.EmptyIntersectionFamily(lazyBenchAB, 32, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prod, err := omega.IntersectAll(autos...)
		if err != nil {
			b.Fatal(err)
		}
		if !prod.IsEmpty() {
			b.Fatal("intersection should be empty")
		}
	}
}

#!/usr/bin/env bash
# Repository gate: formatting, vet, and the full test suite under the
# race detector. Run before sending a PR; CI runs the same steps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "ok"

#!/usr/bin/env bash
# Repository gate: formatting, vet, and the full test suite under the
# race detector. Run before sending a PR; CI runs the same steps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

# The engine package shares one mutex-guarded cache and a semaphore
# across goroutines; run the lock-copy and struct-tag analyzers
# explicitly over it and the facade that re-exports its types.
echo "== go vet (engine: copylocks, structtag) =="
go vet -copylocks -structtag ./internal/engine/ .

echo "== go test -race =="
go test -race ./...

echo "ok"

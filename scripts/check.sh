#!/usr/bin/env bash
# Repository gate: formatting, vet, and the full test suite under the
# race detector. Run before sending a PR; CI runs the same steps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

# The engine package shares one mutex-guarded cache and a semaphore
# across goroutines; run the lock-copy and struct-tag analyzers
# explicitly over it and the facade that re-exports its types.
echo "== go vet (engine: copylocks, structtag) =="
go vet -copylocks -structtag ./internal/engine/ .

echo "== go test -race =="
go test -race ./...

# Schedule-independence gate: the jobs-sweep differentials compare the
# sharded parallel search at several worker counts and perturbed
# schedules against the sequential oracle — verdicts, witness lassos and
# state counts must be bit-identical. They already ran (at full size)
# inside the -race suite above; this named quick pass documents the
# contract and keeps a fast dedicated entry point for it.
echo "== schedule-independence (jobs sweep, -race, quick) =="
go test -race -short -count=1 \
    -run 'ScheduleIndependence|Parallel|Concurrent' \
    ./internal/omega/ ./internal/mc/ ./internal/engine/ ./internal/autkern/

# Coverage floors on the two packages carrying the paper's decision
# procedures. The floors sit ~5 points under the measured coverage at
# the time each was last raised, so genuine additions don't trip them
# but a PR that lands untested branches in the classification or
# lazy-exploration layer does.
echo "== coverage floors =="
cov_floor() { # package, floor (integer percent)
    local pkg=$1 floor=$2 line pct
    line=$(go test -coverprofile=/dev/null "$pkg" | tail -1)
    pct=$(echo "$line" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
    if [ -z "$pct" ]; then
        echo "$pkg: no coverage figure in: $line" >&2; exit 1
    fi
    if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p < f) }'; then
        echo "$pkg: coverage ${pct}% below floor ${floor}%" >&2; exit 1
    fi
    echo "$pkg: ${pct}% (floor ${floor}%)"
}
cov_floor ./internal/omega/ 84
cov_floor ./internal/core/ 76
cov_floor ./internal/autkern/ 89
cov_floor ./internal/dfa/ 90
cov_floor ./internal/mc/ 87
# The observability layer is infrastructure every other layer leans on;
# untested branches here fail silently in production scrapes.
cov_floor ./internal/obs/ 85
cov_floor ./internal/obshttp/ 92
# The planner picks which decision procedure answers a query; a wrong
# untested branch here silently routes queries to the wrong algorithm.
cov_floor ./internal/plan/ 85
cov_floor ./internal/cli/ 80
# The persistent store is the crash-safety surface: an untested decode
# or recovery branch is exactly where corrupted bytes turn into wrong
# verdicts.
cov_floor ./internal/store/ 85
# The scenario families carry known-verdict specs the parallel search is
# differentially tested against; the par package is the scheduling
# substrate every sharded wave runs on.
cov_floor ./internal/ts/ 90
cov_floor ./internal/par/ 90

# Graph-algorithm lint: SCC decomposition, reachability closures and
# state-pair/key interning live in internal/autkern only. A new Tarjan
# (lowlink bookkeeping), a hand-rolled reverse-reachability stack, or an
# ad-hoc `index := map[...]int` interner anywhere else reintroduces the
# duplication this kernel removed.
echo "== autkern lint =="
lint_fail=0
hits=$(grep -rn --include='*.go' -e 'onStack' -e 'lowlink'     internal cmd ./*.go | grep -v '^internal/autkern/' || true)
if [ -n "$hits" ]; then
    echo "SCC implementation outside internal/autkern (use autkern.SCCs*/CyclicFunc):" >&2
    echo "$hits" >&2; lint_fail=1
fi
hits=$(grep -rn --include='*.go' -e 'index := map\[' -e 'map\[\[2\]int\]'     internal cmd ./*.go | grep -v '^internal/autkern/' | grep -v '_test\.go:' || true)
if [ -n "$hits" ]; then
    echo "ad-hoc interner outside internal/autkern (use autkern.PairInterner/KeyInterner/Interner):" >&2
    echo "$hits" >&2; lint_fail=1
fi
[ "$lint_fail" -eq 0 ] || exit 1
echo "autkern lint ok"

# Planner lint: production code must route containment through the
# planner (plan.Contains / engine Check), which falls back to the eager
# oracle itself when probes carry no class evidence. Direct
# ContainsEager calls are for the oracle's own home (internal/omega),
# the planner's fallback path (internal/plan) and differential tests.
echo "== planner lint =="
hits=$(grep -rn --include='*.go' 'ContainsEager' internal cmd ./*.go \
    | grep -v '^internal/omega/' | grep -v '^internal/plan/' \
    | grep -v '_test\.go:' || true)
if [ -n "$hits" ]; then
    echo "direct ContainsEager outside internal/omega|internal/plan (route through plan.Contains or engine Check):" >&2
    echo "$hits" >&2
    exit 1
fi
echo "planner lint ok"

# Benchmark smoke: every benchmark must still run (one iteration each),
# and bench.sh's quick mode enforces the deterministic lazy-vs-eager
# states gate on the product-heavy families.
echo "== benchmark smoke =="
go test -run '^$' -bench . -benchtime 1x ./... > /dev/null
scripts/bench.sh -quick

# Native fuzz targets: a short coverage-guided smoke per parser. Any
# crasher found here lands in testdata/fuzz/ as a regression seed.
echo "== fuzz smoke (10s per target) =="
go test -run='^$' -fuzz=FuzzLTLParse -fuzztime=10s ./internal/ltl/
go test -run='^$' -fuzz=FuzzRegexParse -fuzztime=10s ./internal/regex/
go test -run='^$' -fuzz=FuzzOmegaParseText -fuzztime=10s ./internal/omega/
go test -run='^$' -fuzz=FuzzStoreDecode -fuzztime=10s ./internal/store/

# CLI failure modes: malformed or refused inputs must exit non-zero with
# a one-line diagnostic on stderr — never a stack trace, never success.
echo "== CLI exit codes =="
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp" ./cmd/classify ./cmd/speccheck

cli_must_fail() { # name, expected stderr substring, then the command
    local name=$1 want=$2; shift 2
    local out rc=0
    out=$("$@" 2>&1 >/dev/null) || rc=$?
    if [ "$rc" -eq 0 ]; then
        echo "$name: expected non-zero exit" >&2; exit 1
    fi
    if [[ "$out" == *goroutine* || "$out" == *panic:* ]]; then
        echo "$name: stack trace leaked to the user:" >&2
        echo "$out" >&2; exit 1
    fi
    if [[ "$out" != *"$want"* ]]; then
        echo "$name: diagnostic missing '$want':" >&2
        echo "$out" >&2; exit 1
    fi
}

# Daemon smoke: temporald must come up, serve /healthz and /metrics with
# the canonical engine metric families, classify over HTTP, and die
# cleanly. Uses -addr-file + the built-in -probe client, so the check
# needs no curl and no fixed port.
echo "== temporald smoke =="
go build -o "$tmp" ./cmd/temporald
"$tmp/temporald" -addr 127.0.0.1:0 -addr-file "$tmp/addr" &
temporald_pid=$!
for _ in $(seq 1 50); do
    [ -s "$tmp/addr" ] && break
    sleep 0.1
done
if [ ! -s "$tmp/addr" ]; then
    echo "temporald did not write its address file" >&2
    kill "$temporald_pid" 2>/dev/null || true
    exit 1
fi
daemon_addr=$(cat "$tmp/addr")
probe_out=$("$tmp/temporald" -probe "$daemon_addr")
for metric in engine_cache_hits engine_cache_misses \
    omega_lazy_states_materialized budget_exceeded engine_panics_recovered \
    plan_fallbacks; do
    if ! grep -q "$metric" <<<"$probe_out"; then
        echo "temporald /metrics missing $metric" >&2
        kill "$temporald_pid" 2>/dev/null || true
        exit 1
    fi
done
kill "$temporald_pid"
wait "$temporald_pid" 2>/dev/null || true
echo "temporald smoke ok ($daemon_addr)"

# Warm-start smoke: boot the daemon against a verdict store, classify
# once, SIGTERM it (the drain path flushes write-behind verdicts), boot
# a second daemon on the same store, classify the same formula, and
# require the second boot to have served from disk (store_hits > 0 in
# /metrics) with the store healthy in /healthz.
echo "== temporald warm-start smoke =="
store_boot() { # addr-file path
    "$tmp/temporald" -addr 127.0.0.1:0 -addr-file "$1" -store "$tmp/verdicts.log" &
    temporald_pid=$!
    for _ in $(seq 1 50); do
        [ -s "$1" ] && break
        sleep 0.1
    done
    if [ ! -s "$1" ]; then
        echo "temporald (-store) did not write its address file" >&2
        kill "$temporald_pid" 2>/dev/null || true
        exit 1
    fi
}
store_boot "$tmp/addr1"
"$tmp/temporald" -probe "$(cat "$tmp/addr1")" -classify 'G (req -> F ack)' > /dev/null
kill "$temporald_pid"
wait "$temporald_pid" 2>/dev/null || true
if [ ! -s "$tmp/verdicts.log" ]; then
    echo "first boot persisted nothing to $tmp/verdicts.log" >&2
    exit 1
fi
store_boot "$tmp/addr2"
warm_out=$("$tmp/temporald" -probe "$(cat "$tmp/addr2")" -classify 'G (req -> F ack)')
kill "$temporald_pid"
wait "$temporald_pid" 2>/dev/null || true
if ! grep -q '"store_enabled":true' <<<"$warm_out"; then
    echo "second boot /healthz does not report an enabled store:" >&2
    echo "$warm_out" | head -5 >&2
    exit 1
fi
warm_hits=$(grep '^store_hits ' <<<"$warm_out" | awk '{print $2}')
if [ -z "$warm_hits" ] || [ "$warm_hits" -eq 0 ]; then
    echo "second boot served no disk-warm verdicts (store_hits=${warm_hits:-missing})" >&2
    exit 1
fi
echo "temporald warm-start smoke ok (store_hits=$warm_hits)"

: > "$tmp/empty.txt"
cli_must_fail "classify empty batch" "empty input" \
    "$tmp/classify" -batch "$tmp/empty.txt"
cli_must_fail "speccheck empty file" "no formulas" \
    "$tmp/speccheck" -f "$tmp/empty.txt"
cli_must_fail "classify mismatched alphabet" "not in alphabet" \
    "$tmp/classify" -op R -regex '.*c' -alphabet ab
cli_must_fail "classify budget exceeded" "budget exceeded" \
    "$tmp/classify" -budget 1 'G (req -> F ack)'
cli_must_fail "speccheck budget exceeded" "budget exceeded" \
    "$tmp/speccheck" -budget 1 'G (req -> F ack)'

echo "ok"

#!/usr/bin/env bash
# Benchmark harness for the automaton kernel and lazy exploration layers
# (PR 5).
#
# Runs the curated benchmark set — the BenchmarkLazy* eager-vs-lazy
# families and the BenchmarkAlloc* allocation benchmarks over the
# product-heavy generators in internal/gen, plus the pipeline benchmarks
# that exercise containment/equivalence and the model checker end to end
# — and converts the output into a JSON snapshot via cmd/benchjson,
# which also enforces the lazy-vs-eager gate: on the shallow-witness
# families, the lazy path must materialize at most half the states the
# eager oracle does.
#
#   scripts/bench.sh          full run: real benchtime, ns gate, writes
#                             BENCH_pr5.json, and fails on >20% ns/op or
#                             allocs/op regression against the previous
#                             snapshot (BENCH_pr4.json)
#   scripts/bench.sh -quick   smoke run (benchtime=1x): each benchmark
#                             executes once and only the deterministic
#                             states/op gate is enforced — this is what
#                             scripts/check.sh runs
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=full
if [ "${1:-}" = "-quick" ]; then
    MODE=quick
fi

SNAP=BENCH_pr5.json
PREV=BENCH_pr4.json
CURATED='^(BenchmarkLazy|BenchmarkAlloc|BenchmarkEquivalent$|BenchmarkVerifyPeterson$|BenchmarkVerifySemaphore$|BenchmarkE14ModelCheck$)'
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

if [ "$MODE" = "quick" ]; then
    echo "== bench smoke (benchtime=1x, states gate only) =="
    go test -run '^$' -bench "$CURATED" -benchtime 1x -benchmem . > "$tmp/bench.txt"
    # 1x timings are noise: enforce only the deterministic states/op
    # contract and write the snapshot to a scratch path.
    go run ./cmd/benchjson -pr pr5-quick -i "$tmp/bench.txt" -o "$tmp/bench.json"
    echo "bench smoke ok"
    exit 0
fi

echo "== bench (full) =="
go test -run '^$' -bench "$CURATED" -benchtime 50x -benchmem -count 3 . | tee "$tmp/bench.txt"

args=(-pr pr5 -i "$tmp/bench.txt" -o "$tmp/bench.json" -ns-gate)
if [ -f "$SNAP" ]; then
    # Re-runs gate against the committed pr5 snapshot before replacing it.
    args+=(-compare "$SNAP" -tolerance 0.2)
elif [ -f "$PREV" ]; then
    # First pr5 run gates against the previous PR's snapshot.
    args+=(-compare "$PREV" -tolerance 0.2)
fi
go run ./cmd/benchjson "${args[@]}"
mv "$tmp/bench.json" "$SNAP"
echo "wrote $SNAP"

#!/usr/bin/env bash
# Benchmark harness for the lazy exploration layer (PR 4).
#
# Runs the curated benchmark set — the BenchmarkLazy* eager-vs-lazy
# families over the product-heavy generators in internal/gen, plus the
# pipeline benchmarks that exercise containment/equivalence and the
# model checker end to end — and converts the output into a JSON
# snapshot via cmd/benchjson, which also enforces the lazy-vs-eager
# gate: on the shallow-witness families, the lazy path must materialize
# at most half the states the eager oracle does.
#
#   scripts/bench.sh          full run: real benchtime, ns gate, writes
#                             BENCH_pr4.json, and fails on ns/op
#                             regression against the committed snapshot
#   scripts/bench.sh -quick   smoke run (benchtime=1x): each benchmark
#                             executes once and only the deterministic
#                             states/op gate is enforced — this is what
#                             scripts/check.sh runs
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=full
if [ "${1:-}" = "-quick" ]; then
    MODE=quick
fi

SNAP=BENCH_pr4.json
CURATED='^(BenchmarkLazy|BenchmarkEquivalent$|BenchmarkVerifyPeterson$|BenchmarkVerifySemaphore$|BenchmarkE14ModelCheck$)'
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

if [ "$MODE" = "quick" ]; then
    echo "== bench smoke (benchtime=1x, states gate only) =="
    go test -run '^$' -bench "$CURATED" -benchtime 1x -benchmem . > "$tmp/bench.txt"
    # 1x timings are noise: enforce only the deterministic states/op
    # contract and write the snapshot to a scratch path.
    go run ./cmd/benchjson -pr pr4-quick -i "$tmp/bench.txt" -o "$tmp/bench.json"
    echo "bench smoke ok"
    exit 0
fi

echo "== bench (full) =="
go test -run '^$' -bench "$CURATED" -benchtime 50x -benchmem -count 3 . | tee "$tmp/bench.txt"

args=(-pr pr4 -i "$tmp/bench.txt" -o "$tmp/bench.json" -ns-gate)
if [ -f "$SNAP" ]; then
    # Gate against the committed snapshot before replacing it.
    args+=(-compare "$SNAP" -tolerance 0.5)
fi
go run ./cmd/benchjson "${args[@]}"
mv "$tmp/bench.json" "$SNAP"
echo "wrote $SNAP"

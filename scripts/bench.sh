#!/usr/bin/env bash
# Benchmark harness for the automaton kernel, lazy exploration,
# observability, query-planner, persistent-store and parallel-search
# layers (PR 9).
#
# Runs the curated benchmark set — the BenchmarkLazy* eager-vs-lazy
# families and the BenchmarkAlloc* allocation benchmarks over the
# product-heavy generators in internal/gen, the pipeline benchmarks that
# exercise containment/equivalence and the model checker end to end, the
# BenchmarkObs* observability-overhead probes, and the BenchmarkPlan*
# planner families (planned fast path vs lazy/eager Streett per
# hierarchy class), and the BenchmarkStore* cold-vs-warm engine-boot
# families over the persistent verdict store, and the
# BenchmarkParallelSearch* worker sweeps whose iterations assert
# bit-identical verdicts against the sequential oracle — and converts the output
# into a JSON snapshot via cmd/benchjson, which also enforces the
# lazy-vs-eager gate: on the shallow-witness families, the lazy path
# must materialize at most half the states the eager oracle does. The
# full run additionally gates the planner's safety family (the planned
# bad-prefix procedure must be at least 2x faster than the lazy Streett
# path on the same query) and the warm-restart family (a warm engine
# boot over a seeded store must classify the suite at least 2x faster
# than a cold boot that computes everything).
#
# The obs-disabled benchmarks are the free-when-off contract in numbers:
# they run at a fixed large iteration count (their ops are nanoseconds,
# so -benchtime 50x would be pure noise) and gate at 5% — a counter Inc
# or disabled span on the hot path must stay free.
#
#   scripts/bench.sh          full run: real benchtime, ns gate, writes
#                             BENCH_pr9.json, and fails on >20% ns/op or
#                             allocs/op regression against the previous
#                             snapshot (BENCH_pr8.json), plus the 5% obs
#                             overhead gate, the 2x planner safety gate,
#                             the 2x warm-restart gate and (on hosts
#                             with >=4 CPUs) the 1.8x parallel speedup
#                             gate at 4 workers
#   scripts/bench.sh -quick   smoke run (benchtime=1x): each benchmark
#                             executes once and only the deterministic
#                             states/op gate is enforced — this is what
#                             scripts/check.sh runs
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=full
if [ "${1:-}" = "-quick" ]; then
    MODE=quick
fi

SNAP=BENCH_pr9.json
PREV=BENCH_pr8.json
CURATED='^(BenchmarkLazy|BenchmarkAlloc|BenchmarkObs|BenchmarkPlan|BenchmarkStore|BenchmarkParallelSearch|BenchmarkEquivalent$|BenchmarkVerifyPeterson$|BenchmarkVerifySemaphore$|BenchmarkE14ModelCheck$)'
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

if [ "$MODE" = "quick" ]; then
    echo "== bench smoke (benchtime=1x, states gate only) =="
    go test -run '^$' -bench "$CURATED" -benchtime 1x -benchmem . > "$tmp/bench.txt"
    # 1x timings are noise: enforce only the deterministic states/op
    # contract and write the snapshot to a scratch path. The
    # BenchmarkParallelSearch families assert their 0-verdict-diff
    # contract in-bench, so even the smoke run proves the sharded search
    # agrees with the sequential oracle.
    go run ./cmd/benchjson -pr pr9-quick -i "$tmp/bench.txt" -o "$tmp/bench.json"
    echo "bench smoke ok"
    exit 0
fi

echo "== bench (full) =="
go test -run '^$' -bench "$CURATED" -benchtime 50x -benchmem -count 3 . | tee "$tmp/bench.txt"

# Nanosecond-scale obs benchmarks re-run at a fixed high iteration count
# for stable figures; these lines replace the 50x ones in the snapshot
# input (benchjson averages duplicate names, so drop the noisy pass).
echo "== bench (obs overhead, 100000x) =="
go test -run '^$' -bench '^BenchmarkObs' -benchtime 100000x -benchmem -count 3 . | tee "$tmp/obs.txt"
grep -v '^BenchmarkObs' "$tmp/bench.txt" > "$tmp/merged.txt"
cat "$tmp/obs.txt" >> "$tmp/merged.txt"

args=(-pr pr9 -i "$tmp/merged.txt" -o "$tmp/bench.json" -ns-gate)
if [ -f "$SNAP" ]; then
    # Re-runs gate against the committed pr9 snapshot before replacing it.
    args+=(-compare "$SNAP" -tolerance 0.2)
elif [ -f "$PREV" ]; then
    # First pr9 run gates against the previous PR's snapshot (which has
    # no BenchmarkParallelSearch entries, so the parallel speedup gate
    # below starts from this run's own figures).
    args+=(-compare "$PREV" -tolerance 0.2)
fi
go run ./cmd/benchjson "${args[@]}"

# Obs overhead gate: the disabled-sink path may regress at most 5%
# against the committed snapshot. Allocation gate is exact (tolerance 0):
# the disabled path is contractually alloc-free.
if [ -f "$SNAP" ]; then
    grep '^BenchmarkObsDisabled' "$tmp/obs.txt" > "$tmp/obsgate.txt" || true
    if [ -s "$tmp/obsgate.txt" ]; then
        go run ./cmd/benchjson -pr pr9-obs -i "$tmp/obsgate.txt" -o /dev/null \
            -compare "$SNAP" -tolerance 0.05 -allocs-tolerance 0 -lazy-gate ''
        echo "obs overhead gate ok (≤5% vs $SNAP)"
    fi
fi

# Planner safety gate: on the safety-class containment family the
# planned bad-prefix reachability must be >=2x faster than the lazy
# Streett path run on the identical query. Averaged over -count runs.
echo "== planner safety gate (planned <= lazy/2) =="
planned_ns=$(awk '$1 ~ /^BenchmarkPlanSafetyContains\/planned/ { s += $3; n++ } END { if (n) printf "%.1f", s / n }' "$tmp/merged.txt")
lazy_ns=$(awk '$1 ~ /^BenchmarkPlanSafetyContains\/lazy/ { s += $3; n++ } END { if (n) printf "%.1f", s / n }' "$tmp/merged.txt")
if [ -z "$planned_ns" ] || [ -z "$lazy_ns" ]; then
    echo "planner safety gate: BenchmarkPlanSafetyContains missing from bench output" >&2
    exit 1
fi
if awk -v p="$planned_ns" -v l="$lazy_ns" 'BEGIN { exit !(2 * p > l) }'; then
    echo "planner safety gate: planned ${planned_ns} ns/op vs lazy ${lazy_ns} ns/op — less than 2x" >&2
    exit 1
fi
echo "planner safety gate ok (planned ${planned_ns} ns/op, lazy ${lazy_ns} ns/op)"

# Warm-restart gate: a fresh engine booted over a seeded verdict store
# must classify the benchmark suite at least 2x faster than a cold boot
# that computes (and persists) everything. Averaged over -count runs.
echo "== warm-restart gate (warm <= cold/2) =="
cold_ns=$(awk '$1 ~ /^BenchmarkStoreColdStart/ { s += $3; n++ } END { if (n) printf "%.1f", s / n }' "$tmp/merged.txt")
warm_ns=$(awk '$1 ~ /^BenchmarkStoreWarmStart/ { s += $3; n++ } END { if (n) printf "%.1f", s / n }' "$tmp/merged.txt")
if [ -z "$cold_ns" ] || [ -z "$warm_ns" ]; then
    echo "warm-restart gate: BenchmarkStoreColdStart/WarmStart missing from bench output" >&2
    exit 1
fi
if awk -v w="$warm_ns" -v c="$cold_ns" 'BEGIN { exit !(2 * w > c) }'; then
    echo "warm-restart gate: warm ${warm_ns} ns/op vs cold ${cold_ns} ns/op — less than 2x" >&2
    exit 1
fi
echo "warm-restart gate ok (warm ${warm_ns} ns/op, cold ${cold_ns} ns/op)"

# Parallel speedup gate: on the large-product family the sharded search
# at 4 workers must be >=1.8x faster than the single-worker run of the
# identical query. The 0-verdict-diff contract is asserted inside the
# benchmark itself (any divergence fails the bench run above), so this
# gate is purely about throughput — and throughput needs CPUs: on hosts
# with fewer than 4 the workers time-slice one core and the gate is
# skipped, not faked.
echo "== parallel speedup gate (4 workers >= 1.8x on large product) =="
ncpu=$(nproc 2>/dev/null || echo 1)
if [ "$ncpu" -lt 4 ]; then
    echo "parallel speedup gate skipped: only $ncpu CPU(s); timing speedup needs >=4 (verdict-diff contract still enforced in-bench)"
else
    seq1_ns=$(awk '$1 ~ /^BenchmarkParallelSearchProduct\/workers=1\>/ { s += $3; n++ } END { if (n) printf "%.1f", s / n }' "$tmp/merged.txt")
    par4_ns=$(awk '$1 ~ /^BenchmarkParallelSearchProduct\/workers=4\>/ { s += $3; n++ } END { if (n) printf "%.1f", s / n }' "$tmp/merged.txt")
    if [ -z "$seq1_ns" ] || [ -z "$par4_ns" ]; then
        echo "parallel speedup gate: BenchmarkParallelSearchProduct missing from bench output" >&2
        exit 1
    fi
    if awk -v s="$seq1_ns" -v p="$par4_ns" 'BEGIN { exit !(s < 1.8 * p) }'; then
        echo "parallel speedup gate: workers=1 ${seq1_ns} ns/op vs workers=4 ${par4_ns} ns/op — less than 1.8x" >&2
        exit 1
    fi
    echo "parallel speedup gate ok (workers=1 ${seq1_ns} ns/op, workers=4 ${par4_ns} ns/op)"
fi

mv "$tmp/bench.json" "$SNAP"
echo "wrote $SNAP"

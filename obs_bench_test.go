package temporal_test

// Observability harness hooks and overhead benchmarks. TestMain wires two
// opt-in flags into every benchmark/test run:
//
//	go test -bench . -obs.stats            # per-stage timing attribution
//	go test -bench . -obs.pprof :6060      # live net/http/pprof server
//
// The overhead benchmarks document the contract of internal/obs: with no
// sink attached, a span or counter touch costs a few nanoseconds and does
// not allocate, so instrumentation can stay on in the hot paths.

import (
	"flag"
	"net/http"
	_ "net/http/pprof"
	"os"
	"testing"

	"repro/internal/obs"
)

var (
	obsStats = flag.Bool("obs.stats", false, "print per-stage obs timing summary after the run")
	obsPprof = flag.String("obs.pprof", "", "serve net/http/pprof on this address during the run")
)

func TestMain(m *testing.M) {
	flag.Parse()
	if *obsPprof != "" {
		go func() {
			// DefaultServeMux carries the pprof handlers via the blank import.
			if err := http.ListenAndServe(*obsPprof, nil); err != nil {
				println("obs.pprof:", err.Error())
			}
		}()
	}
	var summary *obs.StageSummary
	if *obsStats {
		summary = obs.NewStageSummary()
		obs.Attach(summary)
	}
	code := m.Run()
	if summary != nil {
		obs.Detach()
		println("── obs stage summary ──")
		summary.Write(os.Stderr)
		obs.WriteMetrics(os.Stderr)
	}
	os.Exit(code)
}

var benchCounter = obs.NewCounter("bench.obs.counter")

// BenchmarkObsDisabledSpan measures the full span lifecycle — start, two
// attributes, end — with no sink attached. This is the price paid inside
// instrumented hot loops during normal (untraced) runs.
func BenchmarkObsDisabledSpan(b *testing.B) {
	if obs.Enabled() {
		b.Skip("a sink is attached; disabled-path benchmark not meaningful")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := obs.Start("bench.obs.span").Int("i", i).Str("k", "v")
		sp.End()
	}
}

// BenchmarkObsDisabledCounter measures a counter increment with no sink:
// one atomic add.
func BenchmarkObsDisabledCounter(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchCounter.Inc()
	}
}

// BenchmarkObsEnabledSpan measures the same span lifecycle with a
// StageSummary sink attached, for comparison against the disabled path.
func BenchmarkObsEnabledSpan(b *testing.B) {
	if obs.Enabled() {
		b.Skip("a sink is already attached")
	}
	obs.Attach(obs.NewStageSummary())
	defer obs.Detach()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := obs.Start("bench.obs.span").Int("i", i).Str("k", "v")
		sp.End()
	}
}

// TestObsDisabledSpanOverhead enforces the documented budget: a disabled
// span lifecycle stays under 5ns/op and never allocates (satellite of the
// instrumentation PR; guards against accidentally adding work to the
// disabled path).
func TestObsDisabledSpanOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	if raceEnabled {
		t.Skip("race instrumentation dominates the atomic load being measured")
	}
	if obs.Enabled() {
		t.Skip("a sink is attached")
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp := obs.Start("bench.obs.span").Int("i", i).Str("k", "v")
			sp.End()
		}
	})
	if allocs := res.AllocsPerOp(); allocs != 0 {
		t.Errorf("disabled span allocates %d times per op; want 0", allocs)
	}
	// 5ns is the documented budget on bare metal; allow generous headroom
	// for loaded CI machines while still catching an accidental mutex or
	// allocation on the disabled path (those cost 25ns+).
	if ns := res.NsPerOp(); ns > 20 {
		t.Errorf("disabled span costs %dns/op; want ≤5ns nominal (20ns CI ceiling)", ns)
	}
}

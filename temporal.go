// Package temporal is a complete implementation of the safety–progress
// hierarchy of Manna & Pnueli's "A Hierarchy of Temporal Properties"
// (PODC 1990): the classification of temporal properties into safety,
// guarantee, obligation, recurrence, persistence and reactivity,
// characterized through the paper's four views —
//
//   - linguistic: the operators A, E, R, P building infinitary properties
//     from finitary ones (NewProperty, BuildA/BuildE/BuildR/BuildP, …);
//   - topological: closed/open/G_δ/F_σ/dense predicates and
//     closure/interior on ω-regular sets (IsClosed, Closure, …);
//   - temporal logic: LTL with past, canonical normal forms and the
//     syntactic classification (ParseFormula, Normalize, SyntacticClass);
//   - automata: deterministic Streett automata with the §5.1 decision
//     procedures and exact Wagner ranks (Classify, ClassifyAutomaton).
//
// It also provides the orthogonal safety–liveness classification
// (DecomposeSL, IsLiveness, IsUniformLiveness), and a model checker for
// fair transition systems demonstrating the proof principles attached to
// the classes (Verify, Invariant, CheckInductive, ExtractRanking).
//
// Quick start:
//
//	c, err := temporal.Classify(temporal.MustParseFormula("G (req -> F ack)"))
//	// c.Lowest() == temporal.Recurrence: a response property.
package temporal

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/alphabet"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/lang"
	"repro/internal/ltl"
	"repro/internal/mc"
	"repro/internal/omega"
	"repro/internal/patterns"
	"repro/internal/topology"
	"repro/internal/ts"
	"repro/internal/word"
)

// Re-exported core types. The underlying packages stay internal; these
// aliases are the public API surface.
type (
	// Formula is a temporal-logic formula (LTL with past operators).
	Formula = ltl.Formula
	// Class is a level of the hierarchy.
	Class = core.Class
	// Classification records membership in every class plus exact ranks.
	Classification = core.Classification
	// NormalForm is the conjunctive normal form of §4.
	NormalForm = core.NormalForm
	// Automaton is a complete deterministic Streett predicate automaton.
	Automaton = omega.Automaton
	// Pair is one Streett acceptance pair.
	Pair = omega.Pair
	// Property is a finitary property Φ ⊆ Σ⁺ (a regular language).
	Property = lang.Property
	// Alphabet is a finite alphabet of computation states.
	Alphabet = alphabet.Alphabet
	// Symbol is a single computation state.
	Symbol = alphabet.Symbol
	// Valuation assigns truth values to atomic propositions.
	Valuation = alphabet.Valuation
	// Word is an ultimately periodic infinite word u·v^ω.
	Word = word.Lasso
	// FiniteWord is a finite word over an alphabet.
	FiniteWord = word.Finite
	// System is a fair transition system.
	System = ts.System
	// SystemBuilder assembles fair transition systems.
	SystemBuilder = ts.Builder
	// Fairness is a transition fairness requirement.
	Fairness = ts.Fairness
	// Result is a model-checking verdict.
	Result = mc.Result
	// Trace is a lasso-shaped counterexample computation.
	Trace = mc.Trace
	// SLParts is the safety–liveness decomposition Π = Π_S ∩ Π_L.
	SLParts = core.SLParts
)

// The six classes of the hierarchy (Figure 1).
const (
	Safety      = core.Safety
	Guarantee   = core.Guarantee
	Obligation  = core.Obligation
	Recurrence  = core.Recurrence
	Persistence = core.Persistence
	Reactivity  = core.Reactivity
)

// Fairness levels for transition systems.
const (
	Unfair = ts.Unfair
	Weak   = ts.Weak
	Strong = ts.Strong
)

// ParseFormula parses an LTL+past formula; see internal/ltl.Parse for the
// grammar (X U W F G for future, Y Z S B O H for past).
func ParseFormula(s string) (Formula, error) { return ltl.Parse(s) }

// MustParseFormula is ParseFormula but panics on error.
func MustParseFormula(s string) Formula { return ltl.MustParse(s) }

// Letters builds an alphabet of single-character symbols, e.g. "ab".
func Letters(s string) (*Alphabet, error) { return alphabet.Letters(s) }

// Valuations builds the alphabet 2^AP for the given propositions.
func Valuations(props []string) (*Alphabet, error) { return alphabet.Valuations(props) }

// NewProperty compiles a regular expression (the paper's notation: `+`
// union, juxtaposition, `*`, `^+`, `^n`, `.` for Σ) into a finitary
// property over the alphabet.
func NewProperty(regex string, alpha *Alphabet) (*Property, error) {
	return lang.FromRegex(regex, alpha)
}

// BuildA returns the safety property A(Φ): all prefixes in Φ.
func BuildA(phi *Property) *Automaton { return lang.A(phi) }

// BuildE returns the guarantee property E(Φ): some prefix in Φ.
func BuildE(phi *Property) *Automaton { return lang.E(phi) }

// BuildR returns the recurrence property R(Φ): infinitely many prefixes.
func BuildR(phi *Property) *Automaton { return lang.R(phi) }

// BuildP returns the persistence property P(Φ): all but finitely many.
func BuildP(phi *Property) *Automaton { return lang.P(phi) }

// SimpleObligation returns A(Φ) ∪ E(Ψ).
func SimpleObligation(phi, psi *Property) (*Automaton, error) {
	return lang.SimpleObligation(phi, psi)
}

// SimpleReactivity returns R(Φ) ∪ P(Ψ).
func SimpleReactivity(phi, psi *Property) (*Automaton, error) {
	return lang.SimpleReactivity(phi, psi)
}

// Classify classifies a formula semantically: it compiles the formula to
// a Streett automaton and runs the §5.1 decision procedures. It is the
// convenience form of Engine.ClassifyFormula on the default engine; use
// ClassifyCtx for cancellation or NewEngine for a dedicated engine.
func Classify(f Formula) (Classification, error) {
	return defaultEngine.ClassifyFormula(context.Background(), f, nil)
}

// ClassifyAutomaton classifies the property specified by an automaton.
// It is the convenience form of Engine.ClassifyAutomaton on the default
// engine; use ClassifyAutomatonCtx for cancellation and error reporting.
func ClassifyAutomaton(a *Automaton) Classification {
	c, _ := defaultEngine.ClassifyAutomaton(context.Background(), a)
	return c
}

// SyntacticClass classifies a formula by the shape of its normal form.
func SyntacticClass(f Formula) (Class, NormalForm, error) { return core.SyntacticClass(f) }

// Normalize rewrites a formula into the paper's conjunctive normal form.
func Normalize(f Formula) (NormalForm, error) { return core.Normalize(f) }

// CompileFormula builds a deterministic Streett automaton for the formula
// over the valuation alphabet of its propositions (Prop. 5.3). It is the
// convenience form of Engine.CompileFormula on the default engine; use
// CompileFormulaCtx for cancellation.
func CompileFormula(f Formula, props []string) (*Automaton, error) {
	return defaultEngine.CompileFormula(context.Background(), f, props)
}

// Holds evaluates σ ⊨ f on an ultimately periodic word.
func Holds(f Formula, w Word) (bool, error) { return eval.Holds(f, w) }

// HoldsAt evaluates (σ, j) ⊨ f.
func HoldsAt(f Formula, w Word, j int) (bool, error) { return eval.At(f, w, j) }

// EndSatisfies evaluates the paper's finitary relation σ ⊩ p for a past
// formula on a finite word.
func EndSatisfies(p Formula, w FiniteWord) (bool, error) { return eval.EndSatisfies(p, w) }

// DecomposeSL returns the safety closure and liveness extension with
// Π = Π_S ∩ Π_L. It is the context.Background() form of DecomposeSLCtx.
func DecomposeSL(a *Automaton) SLParts {
	parts, _ := DecomposeSLCtx(context.Background(), a)
	return parts
}

// DecomposeSLCtx is DecomposeSL with cooperative cancellation.
func DecomposeSLCtx(ctx context.Context, a *Automaton) (SLParts, error) {
	return core.DecomposeSLCtx(ctx, a)
}

// IsLiveness reports whether the property is a liveness property.
func IsLiveness(a *Automaton) bool { return core.IsLiveness(a) }

// IsUniformLiveness reports whether a single extension word witnesses
// liveness uniformly.
func IsUniformLiveness(a *Automaton, maxStates int) (bool, error) {
	return core.IsUniformLiveness(a, maxStates)
}

// Topological view wrappers (§3): the Borel correspondence.

// IsClosed reports whether the property is closed (= safety).
func IsClosed(a *Automaton) bool { return topology.IsClosed(a) }

// IsOpen reports whether the property is open (= guarantee).
func IsOpen(a *Automaton) bool { return topology.IsOpen(a) }

// IsGdelta reports whether the property is G_δ (= recurrence).
func IsGdelta(a *Automaton) bool { return topology.IsGdelta(a) }

// IsFsigma reports whether the property is F_σ (= persistence).
func IsFsigma(a *Automaton) bool { return topology.IsFsigma(a) }

// IsDense reports whether the property is dense (= liveness).
func IsDense(a *Automaton) bool { return topology.IsDense(a) }

// Closure returns the topological closure (= safety closure).
func Closure(a *Automaton) *Automaton { return topology.Closure(a) }

// NewSystemBuilder starts building a fair transition system.
func NewSystemBuilder() *SystemBuilder { return ts.NewBuilder() }

// Peterson returns Peterson's mutual-exclusion algorithm as a fair
// transition system.
func Peterson() (*System, error) { return ts.Peterson() }

// Semaphore returns the semaphore mutex with the given acquire fairness.
func Semaphore(acquireFair Fairness) (*System, error) { return ts.Semaphore(acquireFair) }

// TrivialMutex returns the do-nothing "mutex" of the introduction.
func TrivialMutex() (*System, error) { return ts.TrivialMutex() }

// Verify model-checks sys ⊨ f over fair computations. It is the
// convenience form of VerifyCtx on the default engine, which routes
// through the hierarchy-aware planner: □χ invariants are decided by
// plain reachability, everything else by the fair-lasso search.
func Verify(sys *System, f Formula) (Result, error) {
	return VerifyCtx(context.Background(), sys, f)
}

// Invariant checks □χ by reachability (the safety proof obligation).
// It is the context.Background() form of InvariantCtx.
func Invariant(sys *System, chi Formula) (bool, []int, error) {
	return InvariantCtx(context.Background(), sys, chi)
}

// InvariantCtx is Invariant with cooperative cancellation and
// budgeting: each explored system state is charged to the context's
// budget.
func InvariantCtx(ctx context.Context, sys *System, chi Formula) (bool, []int, error) {
	return mc.InvariantCtx(ctx, sys, chi)
}

// CheckInductive applies the paper's invariance proof rule to a candidate
// state invariant.
func CheckInductive(sys *System, chi Formula) (mc.InductiveResult, error) {
	return mc.CheckInductive(sys, chi)
}

// ExtractRanking builds a well-founded ranking certificate for a
// fairness-free response property (the explicit-induction principle).
func ExtractRanking(sys *System, trigger, goal Formula) (mc.Ranking, error) {
	return mc.ExtractRanking(sys, trigger, goal)
}

// ParseWord builds the infinite word prefix·loop^ω. Each part is either a
// string of single-character symbols ("abab") or a sequence of valuation
// symbols in braces ("{req}{ack}{}"); the loop must be non-empty.
func ParseWord(prefix, loop string) (Word, error) {
	u, err := parseSymbols(prefix)
	if err != nil {
		return Word{}, err
	}
	v, err := parseSymbols(loop)
	if err != nil {
		return Word{}, err
	}
	return word.NewLasso(u, v)
}

// MustLasso is ParseWord but panics on error; for fixtures and examples.
func MustLasso(prefix, loop string) Word {
	w, err := ParseWord(prefix, loop)
	if err != nil {
		panic(err)
	}
	return w
}

func parseSymbols(s string) (FiniteWord, error) {
	if !strings.Contains(s, "{") {
		return word.FiniteFromString(s), nil
	}
	var out FiniteWord
	for len(s) > 0 {
		if s[0] != '{' {
			return nil, fmt.Errorf("temporal: expected '{' in valuation word at %q", s)
		}
		end := strings.IndexByte(s, '}')
		if end < 0 {
			return nil, fmt.Errorf("temporal: unterminated valuation symbol in %q", s)
		}
		sym := Symbol(s[:end+1])
		if _, err := alphabet.ParseValuation(sym); err != nil {
			return nil, err
		}
		out = append(out, sym)
		s = s[end+1:]
	}
	return out, nil
}

// ToSafetyAutomaton rewrites the automaton into the paper's syntactic
// safety normal form; it fails with omega.ErrNotInClass when the property
// is not a safety property (Prop. 5.1, constructive direction).
func ToSafetyAutomaton(a *Automaton) (*Automaton, error) { return a.ToSafetyAutomaton() }

// ToGuaranteeAutomaton is the guarantee normal form (absorbing good
// region).
func ToGuaranteeAutomaton(a *Automaton) (*Automaton, error) { return a.ToGuaranteeAutomaton() }

// ToRecurrenceAutomaton is the recurrence normal form: a single Büchi
// pair (R, ∅), built with the paper's persistent-cycle enlargement and a
// cyclic-counter merge.
func ToRecurrenceAutomaton(a *Automaton) (*Automaton, error) { return a.ToRecurrenceAutomaton() }

// ToPersistenceAutomaton is the persistence (co-Büchi) normal form.
func ToPersistenceAutomaton(a *Automaton) (*Automaton, error) { return a.ToPersistenceAutomaton() }

// Interior returns the largest open subset of the property (general
// multi-pair construction).
func Interior(a *Automaton) *Automaton { return a.Interior() }

// Equivalent decides exact language equality of two Streett automata,
// returning a separating lasso word on failure. It is the convenience
// form of Engine.Equivalent on the default engine; use EquivalentCtx for
// cancellation.
func Equivalent(a, b *Automaton) (bool, Word, error) {
	return defaultEngine.Equivalent(context.Background(), a, b)
}

// Contains decides L(a) ⊇ L(b) exactly, returning a witness of
// L(b) − L(a) on failure. It is the convenience form of Engine.Contains
// on the default engine; use ContainsCtx for cancellation.
func Contains(a, b *Automaton) (bool, Word, error) {
	return defaultEngine.Contains(context.Background(), a, b)
}

// Specification patterns (the checklist vocabulary of §1, in the style of
// Dwyer–Avrunin–Corbett), re-exported from internal/patterns.
type (
	// PatternSpec instantiates a specification pattern.
	PatternSpec = patterns.Spec
	// PatternEntry is a catalog row with its hierarchy class.
	PatternEntry = patterns.Entry
)

// The supported patterns and scopes.
const (
	PatternAbsence      = patterns.Absence
	PatternExistence    = patterns.Existence
	PatternUniversality = patterns.Universality
	PatternResponse     = patterns.Response
	PatternPrecedence   = patterns.Precedence

	ScopeGlobal     = patterns.Global
	ScopeBefore     = patterns.Before
	ScopeAfter      = patterns.After
	ScopeAfterUntil = patterns.AfterUntil
)

// BuildPattern returns the temporal formula of a specification pattern.
func BuildPattern(spec PatternSpec) (Formula, error) { return patterns.Build(spec) }

// PatternCatalog lists every supported pattern/scope combination with its
// verified hierarchy class.
func PatternCatalog() []PatternEntry { return patterns.Catalog() }

// ReduceAutomaton quotients bisimilar states (language-preserving).
func ReduceAutomaton(a *Automaton) *Automaton { return a.Reduce() }

// ResponseCertificate is a machine-checkable chain-rule proof of a
// response property under justice (the paper's explicit-induction
// principle for the recurrence class).
type ResponseCertificate = mc.ResponseCertificate

// SynthesizeResponse builds a justice chain-rule certificate for
// □(trigger → ◇goal); it fails with mc.ErrNeedsCompassion when weak
// fairness cannot justify the property.
func SynthesizeResponse(sys *System, trigger, goal Formula) (ResponseCertificate, error) {
	return mc.SynthesizeResponse(sys, trigger, goal)
}

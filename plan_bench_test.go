package temporal_test

// Benchmarks for the hierarchy-aware query planner (PR 7). Each family
// runs the same containment query three ways — planned (class-
// specialized fast path), lazy Streett, eager Streett — on inputs where
// containment HOLDS, so neither Streett path can early-exit: they pay
// the full product plus its acceptance analysis, while the planner's
// reachability-only procedures traverse the product once with no
// Streett machinery. scripts/bench.sh gates the safety family at
// planned ≤ lazy/2 ns/op. plan.ContainsWith is called directly (not
// through an Engine) so the verdict memo cache cannot serve iterations
// 2..N; the probes and the decision are hoisted out of the timed loop
// because the engine memoizes them per structural key — steady-state
// planned cost is the specialized procedure, not re-probing.

import (
	"context"
	"testing"

	"repro/internal/lang"
	"repro/internal/omega"
	"repro/internal/plan"
)

// safetyChainPair builds the safety benchmark operands: prefix-check
// chains A(a^64 Σ*) ⊆ A(a^32 Σ*). Both are semantically safety; the
// containment holds, so the planned bad-prefix BFS must close the whole
// ~65×33-state product, and the Streett paths must do that AND analyze
// acceptance.
func safetyChainPair(b *testing.B) (*omega.Automaton, *omega.Automaton) {
	b.Helper()
	container := lang.A(lang.MustRegex("a^32.*", lazyBenchAB))
	contained := lang.A(lang.MustRegex("a^64.*", lazyBenchAB))
	return container, contained
}

// guaranteeChainPair builds the guarantee operands: E(Σ* b a^16) ⊇
// E(Σ* b a^32) — "eventually the pattern b a^n occurs". Neither
// language is closed, so the planner runs the co-dead reachability
// procedure, not the safety one.
func guaranteeChainPair(b *testing.B) (*omega.Automaton, *omega.Automaton) {
	b.Helper()
	container := lang.E(lang.MustRegex(".*ba^16", lazyBenchAB))
	contained := lang.E(lang.MustRegex(".*ba^32", lazyBenchAB))
	return container, contained
}

// requireTier pins the benchmark to its intended fast path: if a probe
// change reroutes the family, the numbers would silently measure the
// wrong procedure.
func requireTier(b *testing.B, a, bb *omega.Automaton, want plan.Tier) {
	b.Helper()
	out, err := plan.Contains(context.Background(), a, bb)
	if err != nil {
		b.Fatal(err)
	}
	if out.Tier != want || !out.Holds {
		b.Fatalf("family plans tier %v (holds=%v), want %v with containment holding", out.Tier, out.Holds, want)
	}
}

func benchPlanned(b *testing.B, a, bb *omega.Automaton) {
	ctx := context.Background()
	pa, err := plan.ProbeAutomaton(ctx, a)
	if err != nil {
		b.Fatal(err)
	}
	pb, err := plan.ProbeAutomaton(ctx, bb)
	if err != nil {
		b.Fatal(err)
	}
	d := plan.DecideContains(pa, pb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := plan.ContainsWith(ctx, d, a, bb)
		if err != nil || !out.Holds {
			b.Fatalf("verdict %v err %v", out.Holds, err)
		}
	}
}

func benchLazy(b *testing.B, a, bb *omega.Automaton) {
	for i := 0; i < b.N; i++ {
		ok, _, err := a.ContainsCtx(context.Background(), bb)
		if err != nil || !ok {
			b.Fatalf("verdict %v err %v", ok, err)
		}
	}
}

func benchEager(b *testing.B, a, bb *omega.Automaton) {
	for i := 0; i < b.N; i++ {
		ok, _, err := a.ContainsEagerCtx(context.Background(), bb)
		if err != nil || !ok {
			b.Fatalf("verdict %v err %v", ok, err)
		}
	}
}

func BenchmarkPlanSafetyContains(b *testing.B) {
	a, bb := safetyChainPair(b)
	requireTier(b, a, bb, plan.TierSafety)
	b.Run("planned", func(b *testing.B) { benchPlanned(b, a, bb) })
	b.Run("lazy", func(b *testing.B) { benchLazy(b, a, bb) })
	b.Run("eager", func(b *testing.B) { benchEager(b, a, bb) })
}

func BenchmarkPlanGuaranteeContains(b *testing.B) {
	a, bb := guaranteeChainPair(b)
	requireTier(b, a, bb, plan.TierGuarantee)
	b.Run("planned", func(b *testing.B) { benchPlanned(b, a, bb) })
	b.Run("lazy", func(b *testing.B) { benchLazy(b, a, bb) })
}

// BenchmarkPlanRecurrenceContains: Büchi-shaped operands R(Σ*b) ⊇
// R(Σ*b Σ*): the planned per-pair SCC pass against the general
// refinement loop.
func BenchmarkPlanRecurrenceContains(b *testing.B) {
	container := lang.R(lang.MustRegex(".*ba^8", lazyBenchAB))
	contained := lang.R(lang.MustRegex(".*ba^16", lazyBenchAB))
	requireTier(b, container, contained, plan.TierRecurrence)
	b.Run("planned", func(b *testing.B) { benchPlanned(b, container, contained) })
	b.Run("lazy", func(b *testing.B) { benchLazy(b, container, contained) })
}

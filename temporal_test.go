package temporal_test

import (
	"testing"

	temporal "repro"
)

func TestFacadeClassify(t *testing.T) {
	tests := []struct {
		f    string
		want temporal.Class
	}{
		{"G !(c1 & c2)", temporal.Safety},
		{"F done", temporal.Guarantee},
		{"G p | F q", temporal.Obligation},
		{"G (req -> F ack)", temporal.Recurrence},
		{"F G stable", temporal.Persistence},
		{"G F e -> G F t", temporal.Reactivity},
	}
	for _, tt := range tests {
		f, err := temporal.ParseFormula(tt.f)
		if err != nil {
			t.Fatalf("parse %q: %v", tt.f, err)
		}
		c, err := temporal.Classify(f)
		if err != nil {
			t.Fatalf("classify %q: %v", tt.f, err)
		}
		if c.Lowest() != tt.want {
			t.Errorf("%q: %v, want %v", tt.f, c.Lowest(), tt.want)
		}
	}
}

func TestFacadeLinguistic(t *testing.T) {
	ab, err := temporal.Letters("ab")
	if err != nil {
		t.Fatal(err)
	}
	phi, err := temporal.NewProperty(".*b", ab)
	if err != nil {
		t.Fatal(err)
	}
	builders := map[temporal.Class]*temporal.Automaton{
		temporal.Recurrence:  temporal.BuildR(phi),
		temporal.Persistence: temporal.BuildP(phi),
		temporal.Guarantee:   temporal.BuildE(phi),
	}
	for want, a := range builders {
		if got := temporal.ClassifyAutomaton(a).Lowest(); got != want {
			t.Errorf("builder for %v classified as %v", want, got)
		}
	}
	ob, err := temporal.SimpleObligation(phi, phi)
	if err != nil {
		t.Fatal(err)
	}
	if !temporal.ClassifyAutomaton(ob).Obligation {
		t.Error("SimpleObligation not an obligation")
	}
	sr, err := temporal.SimpleReactivity(phi, phi)
	if err != nil {
		t.Fatal(err)
	}
	if !temporal.ClassifyAutomaton(sr).Reactivity {
		t.Error("SimpleReactivity not reactive")
	}
}

func TestFacadeWordsAndEval(t *testing.T) {
	f := temporal.MustParseFormula("G (req -> F ack)")
	good := temporal.MustLasso("", "{req}{ack}")
	bad := temporal.MustLasso("{ack}", "{req}")
	ok, err := temporal.Holds(f, good)
	if err != nil || !ok {
		t.Errorf("good word should satisfy: %v %v", ok, err)
	}
	ok, err = temporal.Holds(f, bad)
	if err != nil || ok {
		t.Errorf("bad word should violate: %v %v", ok, err)
	}
	ok, err = temporal.HoldsAt(temporal.MustParseFormula("ack"), good, 1)
	if err != nil || !ok {
		t.Errorf("ack at 1: %v %v", ok, err)
	}
	if _, err := temporal.ParseWord("{unclosed", "{a}"); err == nil {
		t.Error("malformed valuation word should fail")
	}
	if _, err := temporal.ParseWord("", ""); err == nil {
		t.Error("empty loop should fail")
	}
	p := temporal.MustParseFormula("b & Z H a")
	w, err := temporal.ParseWord("aab", "a")
	if err != nil {
		t.Fatal(err)
	}
	es, err := temporal.EndSatisfies(p, w.PrefixPart())
	if err != nil || !es {
		t.Errorf("aab should end-satisfy b & Z H a: %v %v", es, err)
	}
}

func TestFacadeTopologyAndSL(t *testing.T) {
	ab, _ := temporal.Letters("ab")
	phi, _ := temporal.NewProperty(".*b", ab)
	r := temporal.BuildR(phi)
	if temporal.IsClosed(r) || temporal.IsOpen(r) || !temporal.IsGdelta(r) || temporal.IsFsigma(r) {
		t.Error("topology of □◇b wrong")
	}
	if !temporal.IsDense(r) || !temporal.IsLiveness(r) {
		t.Error("□◇b should be dense/live")
	}
	parts := temporal.DecomposeSL(r)
	ok, err := parts.SafetyPart.IsUniversal()
	if err != nil || !ok {
		t.Error("safety closure of a live property is Σ^ω")
	}
	if cl := temporal.Closure(r); cl == nil {
		t.Error("Closure nil")
	}
	uni, err := temporal.IsUniformLiveness(temporal.BuildE(phi), 64)
	if err != nil || !uni {
		t.Errorf("◇b uniformly live: %v %v", uni, err)
	}
}

func TestFacadeVerification(t *testing.T) {
	sys, err := temporal.Peterson()
	if err != nil {
		t.Fatal(err)
	}
	res, err := temporal.Verify(sys, temporal.MustParseFormula("G !(c1 & c2)"))
	if err != nil || !res.Holds {
		t.Errorf("Peterson mutex: %v %v", res.Holds, err)
	}
	ok, _, err := temporal.Invariant(sys, temporal.MustParseFormula("!(c1 & c2)"))
	if err != nil || !ok {
		t.Errorf("Invariant: %v %v", ok, err)
	}
	if _, err := temporal.CheckInductive(sys, temporal.MustParseFormula("!(c1 & c2)")); err != nil {
		t.Errorf("CheckInductive: %v", err)
	}
	triv, err := temporal.TrivialMutex()
	if err != nil {
		t.Fatal(err)
	}
	res, err = temporal.Verify(triv, temporal.MustParseFormula("G (w1 -> F c1)"))
	if err != nil || res.Holds {
		t.Error("trivial mutex must fail accessibility")
	}

	b := temporal.NewSystemBuilder()
	s0 := b.State("init", "start")
	s1 := b.State("end", "done")
	b.Transition("go", temporal.Weak).Step(s0, s1)
	b.Transition("stay", temporal.Unfair).Step(s1, s1)
	b.SetInit(s0)
	sys2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rank, err := temporal.ExtractRanking(sys2, temporal.MustParseFormula("start"), temporal.MustParseFormula("done"))
	if err != nil {
		t.Fatal(err)
	}
	if err := rank.Validate(sys2); err != nil {
		t.Fatal(err)
	}
	res, err = temporal.Verify(sys2, temporal.MustParseFormula("F done"))
	if err != nil || !res.Holds {
		t.Errorf("termination: %v %v", res.Holds, err)
	}
}

func TestFacadeNormalForm(t *testing.T) {
	f := temporal.MustParseFormula("G (p -> F q)")
	nf, err := temporal.Normalize(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(nf.Clauses) != 1 || nf.Clauses[0].Rec == nil {
		t.Errorf("response should normalize to one recurrence clause: %v", nf)
	}
	cls, _, err := temporal.SyntacticClass(f)
	if err != nil || cls != temporal.Recurrence {
		t.Errorf("SyntacticClass: %v %v", cls, err)
	}
}
